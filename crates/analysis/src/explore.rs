//! The systematic crash-space explorer: machine-checks the paper's
//! recovery theorems over *every* crash instant of a workload run.
//!
//! For each (workload, model) configuration the explorer runs two
//! passes:
//!
//! 1. **Collect** ([`pass1`]) — one instrumented run with the journal
//!    and the engine's crash-point collector attached. The collector
//!    records every persistency boundary (flush issue/ack/NACK, epoch
//!    commits, recovery-table undo/delay/NACK transitions, WPQ
//!    back-pressure, CDR messages) and the *crash-state timeline*: a
//!    digest of the monotonic mutation counters of every
//!    crash-relevant state component, appended on change. The raw
//!    crash space is every cycle in `0..=end_cycle`; the timeline
//!    partitions it into equivalence intervals whose members provably
//!    recover to byte-identical NVM images (see
//!    `asap_core::sim::collect`). One representative per interval is
//!    enough — the rest are *pruned* (90%+ in practice), which is what
//!    makes ~10⁶-point spaces checkable at all: the quick CI suite
//!    (~2×10⁵ raw points) verifies in about a second, and a measured
//!    1.06M-point single-workload run prunes to 47k classes.
//! 2. **Verify** ([`verify_chunk`]) — the surviving representatives,
//!    split into chunks, are checked by deterministic re-runs: a fresh
//!    simulation advances to each survivor in ascending order and runs
//!    the non-destructive oracle (`Sim::crash_check_now`). Chunks are
//!    independent jobs, so a harness can fan them out across a worker
//!    pool; results assemble in input order ([`assemble_config`]),
//!    keeping reports byte-identical at any worker count.
//!
//! When the survivor set exceeds `points_budget`, importance sampling
//! keeps the boundary-adjacent intervals (± [`ExploreParams::pad`]
//! cycles) first and fills the remainder with a seeded pseudo-random
//! draw — deterministic under `--seed`, and the report counts what was
//! dropped (`sampled_out`) so truncation is never silent.
//!
//! [`PruneMode::Verify`] additionally checks each interval's *last*
//! cycle against its first: report and recovered-image digest must
//! match, turning the equivalence relation itself into a tested claim.

use crate::report::json_str;
use asap_core::{BoundaryKind, CrashPoints, CrashReport, Sim, SimBuilder, ViolationRule};
use asap_sim_core::{Cycle, DetRng, Flavor, ModelKind, SimConfig};
use asap_workloads::{make_workload, WorkloadKind, WorkloadParams};
use std::fmt::Write as _;

/// How the explorer treats the crash-space equivalence relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneMode {
    /// No pruning: candidates are raw cycles (budget sampling still
    /// applies). Cross-check mode; orders of magnitude more work for
    /// the same theorem coverage.
    Off,
    /// Prune by crash-state equivalence; verify one representative per
    /// interval (the default).
    On,
    /// Prune, and *also* re-check each interval's last cycle against
    /// its first — report and recovered image must be identical.
    Verify,
}

impl PruneMode {
    /// Stable identifier (CLI value / JSON key).
    pub fn as_str(self) -> &'static str {
        match self {
            PruneMode::Off => "off",
            PruneMode::On => "on",
            PruneMode::Verify => "verify",
        }
    }
}

impl std::str::FromStr for PruneMode {
    type Err = String;
    fn from_str(s: &str) -> Result<PruneMode, String> {
        match s {
            "off" => Ok(PruneMode::Off),
            "on" => Ok(PruneMode::On),
            "verify" => Ok(PruneMode::Verify),
            other => Err(format!(
                "unknown prune mode {other:?} (expected off|on|verify)"
            )),
        }
    }
}

/// Parameters of one explorer invocation.
#[derive(Debug, Clone)]
pub struct ExploreParams {
    /// Workloads to explore.
    pub workloads: Vec<WorkloadKind>,
    /// Models to explore (each workload × each model is one config).
    pub models: Vec<ModelKind>,
    /// Persistency flavor.
    pub flavor: Flavor,
    /// Threads (programs) per workload.
    pub threads: usize,
    /// Logical operations per thread.
    pub ops_per_thread: u64,
    /// Workload RNG seed; also salts importance sampling.
    pub seed: u64,
    /// Half-width (cycles) of the boundary neighbourhoods that get
    /// sampling priority.
    pub pad: u64,
    /// Maximum survivors verified per config; the excess is
    /// importance-sampled away (and counted as `sampled_out`).
    pub points_budget: usize,
    /// Pruning mode.
    pub prune: PruneMode,
    /// Survivors per verification chunk (one chunk = one worker job =
    /// one deterministic re-run).
    pub chunk: usize,
    /// Fault injection: drop every n-th recovery-table undo record
    /// (`0` = off). Used by the broken-model fixture that proves the
    /// explorer catches Theorem 2 violations.
    pub broken_undo_every: u64,
}

impl Default for ExploreParams {
    fn default() -> ExploreParams {
        ExploreParams {
            workloads: vec![WorkloadKind::Queue, WorkloadKind::Cceh],
            models: ModelKind::all().to_vec(),
            flavor: Flavor::Release,
            threads: 2,
            ops_per_thread: 12,
            seed: 7,
            pad: 8,
            points_budget: 2048,
            prune: PruneMode::On,
            chunk: 512,
            broken_undo_every: 0,
        }
    }
}

impl ExploreParams {
    fn workload_params(&self) -> WorkloadParams {
        WorkloadParams {
            threads: self.threads,
            ops_per_thread: self.ops_per_thread,
            seed: self.seed,
            ..WorkloadParams::default()
        }
    }

    /// The configuration grid in report order (workload-major).
    pub fn configs(&self) -> Vec<(WorkloadKind, ModelKind)> {
        let mut out = Vec::with_capacity(self.workloads.len() * self.models.len());
        for &w in &self.workloads {
            for &m in &self.models {
                out.push((w, m));
            }
        }
        out
    }
}

/// Build the simulation for one config — shared by both passes so the
/// verify re-runs replay exactly the run the collector observed.
fn build_sim(p: &ExploreParams, workload: WorkloadKind, model: ModelKind, collect: bool) -> Sim {
    let mut cfg = SimConfig::paper();
    cfg.num_cores = cfg.num_cores.max(p.threads);
    let programs = make_workload(workload, &p.workload_params());
    let mut b = SimBuilder::new(cfg, model, p.flavor)
        .programs(programs)
        .with_journal();
    if collect {
        b = b.collect_crash_points();
    }
    let mut sim = b.build();
    if p.broken_undo_every != 0 {
        sim.inject_undo_drop(p.broken_undo_every);
    }
    sim
}

/// One verification chunk: ascending survivor cycles, plus (in
/// [`PruneMode::Verify`]) each survivor's interval-end cycle.
#[derive(Debug, Clone)]
pub struct Chunk {
    /// Representative crash cycles, ascending.
    pub points: Vec<u64>,
    /// Interval-end cycles parallel to `points` (empty unless verify
    /// mode).
    pub ends: Vec<u64>,
}

/// Everything pass 1 learned about one config's crash space.
#[derive(Debug, Clone)]
pub struct Pass1 {
    /// Workload explored.
    pub workload: WorkloadKind,
    /// Model explored.
    pub model: ModelKind,
    /// Final cycle of the instrumented run.
    pub end_cycle: u64,
    /// Raw crash points: every cycle in `0..=end_cycle`.
    pub raw_points: u64,
    /// Distinct crash-equivalence states (timeline intervals).
    pub distinct_states: u64,
    /// Candidates dropped by the points budget.
    pub sampled_out: u64,
    /// Boundary events observed, by kind (indexed per
    /// [`BoundaryKind::ALL`]).
    pub boundary_counts: [u64; 10],
    /// Boundary events whose crash cycle's representative survived
    /// sampling (== `boundary_counts` when nothing was sampled out).
    pub boundary_covered: [u64; 10],
    /// Verification chunks (ascending, non-overlapping).
    pub chunks: Vec<Chunk>,
}

/// Collect pass: one instrumented run; returns the pruned, sampled,
/// chunked survivor plan plus the coverage statistics.
pub fn pass1(p: &ExploreParams, workload: WorkloadKind, model: ModelKind) -> Pass1 {
    let mut sim = build_sim(p, workload, model, true);
    sim.run_to_completion();
    let points: CrashPoints = sim
        .take_crash_points()
        .expect("collector attached by build_sim");
    plan_from_points(p, workload, model, &points)
}

/// Deterministic survivor planning from a collected crash space (split
/// from [`pass1`] so unit tests can feed synthetic timelines).
fn plan_from_points(
    p: &ExploreParams,
    workload: WorkloadKind,
    model: ModelKind,
    points: &CrashPoints,
) -> Pass1 {
    let end = points.end_cycle;
    let raw = end + 1;

    // Observable intervals: crashing "at" a cycle means after all its
    // events, so only the last timeline entry per cycle is reachable.
    let mut intervals: Vec<(u64, u64)> = Vec::new(); // (start, key ignored) -> (start, end)
    {
        let mut starts: Vec<u64> = Vec::new();
        for &(c, _) in &points.timeline {
            if c > end {
                break;
            }
            match starts.last() {
                Some(&last) if last == c => {}
                _ => starts.push(c),
            }
        }
        if starts.is_empty() {
            starts.push(0);
        }
        for (i, &s) in starts.iter().enumerate() {
            let e = if i + 1 < starts.len() {
                starts[i + 1] - 1
            } else {
                end
            };
            intervals.push((s, e));
        }
    }
    let distinct = intervals.len() as u64;

    // Candidates: intervals when pruning, raw cycles otherwise.
    let candidates: Vec<(u64, u64)> = match p.prune {
        PruneMode::On | PruneMode::Verify => intervals.clone(),
        PruneMode::Off => (0..=end).map(|c| (c, c)).collect(),
    };

    // Importance: a candidate whose range intersects any boundary's
    // ±pad neighbourhood is kept first when the budget bites.
    let mut boundary_counts = [0u64; 10];
    for &(_, kind) in &points.boundaries {
        boundary_counts[kind.index()] += 1;
    }
    let important: Vec<bool> = {
        // Sorted, merged padded windows around boundary cycles.
        let mut windows: Vec<(u64, u64)> = points
            .boundaries
            .iter()
            .map(|&(c, _)| (c.saturating_sub(p.pad), (c + p.pad).min(end)))
            .collect();
        windows.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::new();
        for (lo, hi) in windows {
            match merged.last_mut() {
                Some(m) if lo <= m.1 + 1 => m.1 = m.1.max(hi),
                _ => merged.push((lo, hi)),
            }
        }
        candidates
            .iter()
            .map(|&(s, e)| {
                // Any merged window intersecting [s, e]?
                let i = merged.partition_point(|&(_, whi)| whi < s);
                i < merged.len() && merged[i].0 <= e
            })
            .collect()
    };

    // Budget selection: everything if it fits; otherwise important
    // candidates first, then a seeded pseudo-random draw over the rest.
    // Selection works on index sets so the final plan is ascending.
    let budget = p.points_budget.max(1);
    let selected_idx: Vec<usize> = if candidates.len() <= budget {
        (0..candidates.len()).collect()
    } else {
        let mut rng = DetRng::seed(p.seed).split(config_salt(workload, model));
        let salt = rng.next_u64();
        let rank = |i: usize| {
            // Order-independent deterministic priority per candidate.
            asap_sim_core::mix64(candidates[i].0 ^ salt)
        };
        let (imp, rest): (Vec<usize>, Vec<usize>) =
            (0..candidates.len()).partition(|&i| important[i]);
        let take = |pool: &[usize], n: usize| -> Vec<usize> {
            if pool.len() <= n {
                return pool.to_vec();
            }
            let mut keyed: Vec<(u64, usize)> = pool.iter().map(|&i| (rank(i), i)).collect();
            keyed.sort_unstable();
            keyed.truncate(n);
            keyed.into_iter().map(|(_, i)| i).collect()
        };
        let mut sel = take(&imp, budget);
        let remaining = budget - sel.len();
        sel.extend(take(&rest, remaining));
        sel.sort_unstable();
        sel
    };
    let sampled_out = (candidates.len() - selected_idx.len()) as u64;

    // Coverage: a boundary is covered when its cycle falls inside a
    // selected candidate's range.
    let sel_ranges: Vec<(u64, u64)> = selected_idx.iter().map(|&i| candidates[i]).collect();
    let mut boundary_covered = [0u64; 10];
    for &(c, kind) in &points.boundaries {
        let i = sel_ranges.partition_point(|&(s, _)| s <= c);
        if i > 0 && sel_ranges[i - 1].1 >= c {
            boundary_covered[kind.index()] += 1;
        }
    }

    // Chunk the plan.
    let chunk_len = p.chunk.max(1);
    let chunks = sel_ranges
        .chunks(chunk_len)
        .map(|w| Chunk {
            points: w.iter().map(|&(s, _)| s).collect(),
            ends: if p.prune == PruneMode::Verify {
                w.iter().map(|&(_, e)| e).collect()
            } else {
                Vec::new()
            },
        })
        .collect();

    Pass1 {
        workload,
        model,
        end_cycle: end,
        raw_points: raw,
        distinct_states: distinct,
        sampled_out,
        boundary_counts,
        boundary_covered,
        chunks,
    }
}

/// Deterministic per-config RNG salt (stable label hash, not `Hash`).
fn config_salt(workload: WorkloadKind, model: ModelKind) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in workload
        .label()
        .bytes()
        .chain([b'/'])
        .chain(model.label().bytes())
    {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One oracle violation found at a crash point.
#[derive(Debug, Clone)]
pub struct ViolationHit {
    /// Crash cycle.
    pub cycle: u64,
    /// Violated rule.
    pub rule: ViolationRule,
    /// Human-readable detail from the oracle.
    pub message: String,
}

/// Cap on the verbatim violations kept per config (counts are always
/// complete; this only bounds report memory).
pub const MAX_KEPT_VIOLATIONS: usize = 20;

/// Result of verifying one chunk.
#[derive(Debug, Clone, Default)]
pub struct ChunkResult {
    /// Crash points actually checked.
    pub checked: u64,
    /// Violations by rule (indexed per [`ViolationRule::ALL`]).
    pub rule_counts: [u64; 6],
    /// Kept violations (capped at [`MAX_KEPT_VIOLATIONS`] per chunk).
    pub violations: Vec<ViolationHit>,
    /// Interval-end cross-checks performed (verify mode).
    pub verify_checked: u64,
    /// Interval ends whose report or recovered image differed from the
    /// interval start — equivalence-relation failures.
    pub verify_mismatches: u64,
    /// Max undo records any checked crash point would apply.
    pub undo_max: usize,
}

/// Verify pass: re-run the config deterministically, stopping at every
/// survivor in `chunk` (ascending) for a non-destructive oracle check.
pub fn verify_chunk(
    p: &ExploreParams,
    workload: WorkloadKind,
    model: ModelKind,
    chunk: &Chunk,
) -> ChunkResult {
    let mut sim = build_sim(p, workload, model, false);
    let mut out = ChunkResult::default();
    for (i, &c) in chunk.points.iter().enumerate() {
        sim.run_for(Cycle(c));
        let report = sim.crash_check_now().expect("journal enabled by build_sim");
        out.checked += 1;
        out.undo_max = out.undo_max.max(report.undo_records_applied);
        record_violations(&mut out, c, &report);
        if let Some(&e) = chunk.ends.get(i) {
            // Equivalence audit: the interval's last cycle must recover
            // identically to its first.
            let (img, _) = sim.recovered_preview().expect("journal enabled");
            let start_digest = img.content_digest();
            sim.run_for(Cycle(e));
            let end_report = sim.crash_check_now().expect("journal enabled");
            let (end_img, _) = sim.recovered_preview().expect("journal enabled");
            out.verify_checked += 1;
            if end_report != report || end_img.content_digest() != start_digest {
                out.verify_mismatches += 1;
            }
        }
    }
    out
}

fn record_violations(out: &mut ChunkResult, cycle: u64, report: &CrashReport) {
    for v in &report.violations {
        let idx = ViolationRule::ALL
            .iter()
            .position(|r| *r == v.rule)
            .expect("rule in ALL");
        out.rule_counts[idx] += 1;
        if out.violations.len() < MAX_KEPT_VIOLATIONS {
            out.violations.push(ViolationHit {
                cycle,
                rule: v.rule,
                message: v.message.clone(),
            });
        }
    }
}

/// Assembled per-config result.
#[derive(Debug, Clone)]
pub struct ConfigReport {
    /// Workload label.
    pub workload: String,
    /// Model label.
    pub model: String,
    /// Final cycle of the instrumented run.
    pub end_cycle: u64,
    /// Raw crash points (`end_cycle + 1`).
    pub raw_points: u64,
    /// Distinct crash-equivalence states.
    pub distinct_states: u64,
    /// Representatives actually verified.
    pub checked: u64,
    /// Candidates dropped by the budget.
    pub sampled_out: u64,
    /// Raw points proven redundant by equivalence (0 with pruning off).
    pub pruned: u64,
    /// Boundary events by kind.
    pub boundary_counts: [u64; 10],
    /// Boundary events inside verified representatives' ranges.
    pub boundary_covered: [u64; 10],
    /// Violations by rule across all checked points.
    pub rule_counts: [u64; 6],
    /// Kept violations (capped).
    pub violations: Vec<ViolationHit>,
    /// Interval-end cross-checks performed / failed (verify mode).
    pub verify_checked: u64,
    /// Equivalence-relation failures (must be 0).
    pub verify_mismatches: u64,
    /// Max undo records any checked crash point would apply.
    pub undo_max: usize,
    /// Whether this config was served from the harness result cache.
    pub from_cache: bool,
}

impl ConfigReport {
    /// Total violations across all rules.
    pub fn total_violations(&self) -> u64 {
        self.rule_counts.iter().sum()
    }

    /// `true` when every checked point recovered consistently and every
    /// equivalence cross-check matched.
    pub fn is_clean(&self) -> bool {
        self.total_violations() == 0 && self.verify_mismatches == 0
    }
}

/// Merge one config's pass-1 plan with its chunk results (chunks in
/// input order — determinism at any worker count relies on it).
pub fn assemble_config(p: &ExploreParams, p1: &Pass1, chunks: &[ChunkResult]) -> ConfigReport {
    let mut rule_counts = [0u64; 6];
    let mut violations = Vec::new();
    let mut checked = 0;
    let mut verify_checked = 0;
    let mut verify_mismatches = 0;
    let mut undo_max = 0;
    for c in chunks {
        checked += c.checked;
        verify_checked += c.verify_checked;
        verify_mismatches += c.verify_mismatches;
        undo_max = undo_max.max(c.undo_max);
        for (i, n) in c.rule_counts.iter().enumerate() {
            rule_counts[i] += n;
        }
        for v in &c.violations {
            if violations.len() < MAX_KEPT_VIOLATIONS {
                violations.push(v.clone());
            }
        }
    }
    let pruned = match p.prune {
        PruneMode::Off => 0,
        _ => p1.raw_points - p1.distinct_states,
    };
    ConfigReport {
        workload: p1.workload.label().to_string(),
        model: p1.model.label().to_string(),
        end_cycle: p1.end_cycle,
        raw_points: p1.raw_points,
        distinct_states: p1.distinct_states,
        checked,
        sampled_out: p1.sampled_out,
        pruned,
        boundary_counts: p1.boundary_counts,
        boundary_covered: p1.boundary_covered,
        rule_counts,
        violations,
        verify_checked,
        verify_mismatches,
        undo_max,
        from_cache: false,
    }
}

/// The whole explorer run: parameters echoed plus one entry per config,
/// in grid order.
#[derive(Debug, Clone)]
pub struct CrashSpaceReport {
    /// Flavor explored.
    pub flavor: Flavor,
    /// Threads per workload.
    pub threads: usize,
    /// Ops per thread.
    pub ops_per_thread: u64,
    /// Seed (workload + sampling).
    pub seed: u64,
    /// Boundary pad.
    pub pad: u64,
    /// Survivor budget per config.
    pub points_budget: usize,
    /// Pruning mode.
    pub prune: PruneMode,
    /// Fault-injection knob echoed (0 = healthy run).
    pub broken_undo_every: u64,
    /// Per-config results in grid order.
    pub configs: Vec<ConfigReport>,
}

impl CrashSpaceReport {
    /// Total raw crash points across configs.
    pub fn total_raw(&self) -> u64 {
        self.configs.iter().map(|c| c.raw_points).sum()
    }

    /// Total equivalence-pruned points.
    pub fn total_pruned(&self) -> u64 {
        self.configs.iter().map(|c| c.pruned).sum()
    }

    /// Total verified representatives.
    pub fn total_checked(&self) -> u64 {
        self.configs.iter().map(|c| c.checked).sum()
    }

    /// Total violations.
    pub fn total_violations(&self) -> u64 {
        self.configs.iter().map(|c| c.total_violations()).sum()
    }

    /// Total equivalence cross-check failures.
    pub fn total_verify_mismatches(&self) -> u64 {
        self.configs.iter().map(|c| c.verify_mismatches).sum()
    }

    /// Fraction of the raw space proven redundant (0.0 with pruning
    /// off or an empty space).
    pub fn prune_ratio(&self) -> f64 {
        let raw = self.total_raw();
        if raw == 0 {
            return 0.0;
        }
        self.total_pruned() as f64 / raw as f64
    }

    /// `true` when every config is clean.
    pub fn is_clean(&self) -> bool {
        self.configs.iter().all(|c| c.is_clean())
    }

    /// Human-readable report.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# crash-space exploration ({:?}, {} threads, {} ops/thread, seed {}, \
             budget {}, pad {}, prune {}{})",
            self.flavor,
            self.threads,
            self.ops_per_thread,
            self.seed,
            self.points_budget,
            self.pad,
            self.prune.as_str(),
            if self.broken_undo_every != 0 {
                format!(", BROKEN undo drop 1/{}", self.broken_undo_every)
            } else {
                String::new()
            }
        );
        for c in &self.configs {
            let _ = writeln!(
                out,
                "## {}/{}{}",
                c.workload,
                c.model,
                if c.from_cache { " (cached)" } else { "" }
            );
            let _ = writeln!(
                out,
                "  raw {} | distinct {} | pruned {} | checked {} | sampled-out {} | end cycle {}",
                c.raw_points, c.distinct_states, c.pruned, c.checked, c.sampled_out, c.end_cycle
            );
            let boundaries: Vec<String> = BoundaryKind::ALL
                .iter()
                .enumerate()
                .filter(|&(i, _)| c.boundary_counts[i] > 0)
                .map(|(i, k)| {
                    format!(
                        "{}={}/{}",
                        k.as_str(),
                        c.boundary_covered[i],
                        c.boundary_counts[i]
                    )
                })
                .collect();
            let _ = writeln!(
                out,
                "  boundaries (covered/total): {}",
                if boundaries.is_empty() {
                    "none".to_string()
                } else {
                    boundaries.join(" ")
                }
            );
            if c.verify_checked > 0 {
                let _ = writeln!(
                    out,
                    "  equivalence cross-checks: {} ({} mismatches)",
                    c.verify_checked, c.verify_mismatches
                );
            }
            if c.is_clean() {
                let _ = writeln!(out, "  clean (max undo applied {})", c.undo_max);
            } else {
                for (i, r) in ViolationRule::ALL.iter().enumerate() {
                    if c.rule_counts[i] > 0 {
                        let _ = writeln!(out, "  VIOLATION {}: {}", r.as_str(), c.rule_counts[i]);
                    }
                }
                for v in &c.violations {
                    let _ = writeln!(out, "    - cycle {}: [{}] {}", v.cycle, v.rule, v.message);
                }
            }
        }
        let _ = writeln!(
            out,
            "total: {} raw, {} distinct, {} pruned ({:.1}%), {} checked, {} violation(s), \
             {} mismatch(es)",
            self.total_raw(),
            self.configs.iter().map(|c| c.distinct_states).sum::<u64>(),
            self.total_pruned(),
            self.prune_ratio() * 100.0,
            self.total_checked(),
            self.total_violations(),
            self.total_verify_mismatches()
        );
        out
    }

    /// The CI-artifact JSON form (hand-rolled; zero-dep workspace).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"flavor\":{},\"threads\":{},\"opsPerThread\":{},\"seed\":{},\"pad\":{},\
             \"pointsBudget\":{},\"prune\":{},\"brokenUndoEvery\":{},\"configs\":[",
            json_str(&format!("{:?}", self.flavor).to_lowercase()),
            self.threads,
            self.ops_per_thread,
            self.seed,
            self.pad,
            self.points_budget,
            json_str(self.prune.as_str()),
            self.broken_undo_every
        );
        for (i, c) in self.configs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"workload\":{},\"model\":{},\"endCycle\":{},\"rawPoints\":{},\
                 \"distinctStates\":{},\"checked\":{},\"sampledOut\":{},\"pruned\":{},\
                 \"verifyChecked\":{},\"verifyMismatches\":{},\"undoMax\":{},\
                 \"fromCache\":{},\"boundaries\":{{",
                json_str(&c.workload),
                json_str(&c.model),
                c.end_cycle,
                c.raw_points,
                c.distinct_states,
                c.checked,
                c.sampled_out,
                c.pruned,
                c.verify_checked,
                c.verify_mismatches,
                c.undo_max,
                c.from_cache
            );
            let mut first = true;
            for (j, k) in BoundaryKind::ALL.iter().enumerate() {
                if c.boundary_counts[j] == 0 {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(
                    out,
                    "{}:{{\"total\":{},\"covered\":{}}}",
                    json_str(k.as_str()),
                    c.boundary_counts[j],
                    c.boundary_covered[j]
                );
            }
            out.push_str("},\"ruleCounts\":{");
            let mut first = true;
            for (j, r) in ViolationRule::ALL.iter().enumerate() {
                if c.rule_counts[j] == 0 {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "{}:{}", json_str(r.as_str()), c.rule_counts[j]);
            }
            out.push_str("},\"violations\":[");
            for (j, v) in c.violations.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"cycle\":{},\"rule\":{},\"message\":{}}}",
                    v.cycle,
                    json_str(v.rule.as_str()),
                    json_str(&v.message)
                );
            }
            out.push_str("]}");
        }
        let _ = write!(
            out,
            "],\"totalRaw\":{},\"totalPruned\":{},\"totalChecked\":{},\"totalViolations\":{},\
             \"totalVerifyMismatches\":{},\"pruneRatio\":{:.6}}}",
            self.total_raw(),
            self.total_pruned(),
            self.total_checked(),
            self.total_violations(),
            self.total_verify_mismatches(),
            self.prune_ratio()
        );
        out
    }
}

/// Serial end-to-end driver: pass 1 then every chunk, per config, in
/// grid order. The harness binary reproduces exactly this structure
/// with the chunk jobs fanned out over its worker pool; both paths
/// produce byte-identical reports.
pub fn explore_all(p: &ExploreParams) -> CrashSpaceReport {
    let configs: Vec<ConfigReport> = p
        .configs()
        .into_iter()
        .map(|(w, m)| {
            let p1 = pass1(p, w, m);
            let results: Vec<ChunkResult> =
                p1.chunks.iter().map(|c| verify_chunk(p, w, m, c)).collect();
            assemble_config(p, &p1, &results)
        })
        .collect();
    CrashSpaceReport {
        flavor: p.flavor,
        threads: p.threads,
        ops_per_thread: p.ops_per_thread,
        seed: p.seed,
        pad: p.pad,
        points_budget: p.points_budget,
        prune: p.prune,
        broken_undo_every: p.broken_undo_every,
        configs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExploreParams {
        ExploreParams {
            workloads: vec![WorkloadKind::Queue],
            models: vec![ModelKind::Asap],
            ops_per_thread: 6,
            points_budget: 256,
            chunk: 64,
            ..ExploreParams::default()
        }
    }

    #[test]
    fn explores_a_real_config_clean() {
        let p = quick();
        let r = explore_all(&p);
        assert_eq!(r.configs.len(), 1);
        let c = &r.configs[0];
        assert!(c.raw_points > 1000, "raw space too small: {}", c.raw_points);
        assert!(c.distinct_states > 10, "no state variety: {c:?}");
        assert!(c.checked > 0);
        assert!(c.is_clean(), "violations: {:?}", c.violations);
        // Pruning must be doing real work even on a tiny run.
        assert!(
            c.pruned > c.raw_points / 2,
            "pruned {} of {}",
            c.pruned,
            c.raw_points
        );
    }

    #[test]
    fn verify_mode_confirms_equivalence_relation() {
        let p = ExploreParams {
            prune: PruneMode::Verify,
            ..quick()
        };
        let r = explore_all(&p);
        let c = &r.configs[0];
        assert!(c.verify_checked > 0);
        assert_eq!(c.verify_mismatches, 0, "equivalence relation broken");
    }

    #[test]
    fn broken_model_is_caught() {
        // Drop every undo record: ASAP's speculative persists lose
        // their Theorem 2 protection and some crash point must violate.
        let p = ExploreParams {
            workloads: vec![WorkloadKind::Queue],
            models: vec![ModelKind::Asap],
            broken_undo_every: 1,
            points_budget: 2048,
            ..ExploreParams::default()
        };
        let r = explore_all(&p);
        assert!(
            r.total_violations() > 0,
            "broken model not caught: {}",
            r.to_text()
        );
    }

    #[test]
    fn budget_sampling_is_deterministic_and_counted() {
        let p = ExploreParams {
            points_budget: 32,
            chunk: 8,
            ..quick()
        };
        let a = explore_all(&p);
        let b = explore_all(&p);
        assert_eq!(a.to_json(), b.to_json());
        let c = &a.configs[0];
        assert!(c.sampled_out > 0, "budget did not bite: {c:?}");
        assert_eq!(c.checked, 32);
        assert!(c.is_clean());
    }

    #[test]
    fn report_json_is_wellformed_enough() {
        let r = explore_all(&quick());
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert_eq!(
            j.bytes().filter(|&b| b == b'{').count(),
            j.bytes().filter(|&b| b == b'}').count()
        );
        assert!(j.contains("\"rawPoints\""));
        assert!(r.to_text().contains("clean"));
    }

    #[test]
    fn synthetic_plan_prunes_and_pads() {
        let p = ExploreParams {
            pad: 2,
            points_budget: 4,
            chunk: 16,
            ..quick()
        };
        let mut pts = CrashPoints::new();
        pts.end_cycle = 99;
        // 6 intervals: starts 0, 10, 20, 30, 40, 50.
        for (i, s) in [0u64, 10, 20, 30, 40, 50].iter().enumerate() {
            pts.note_key(*s, i as u64 + 1);
        }
        // One boundary at 21 -> interval starting at 20 is important.
        pts.note_boundary(21, BoundaryKind::FlushAck);
        let plan = plan_from_points(&p, WorkloadKind::Queue, ModelKind::Asap, &pts);
        assert_eq!(plan.raw_points, 100);
        assert_eq!(plan.distinct_states, 6);
        assert_eq!(plan.sampled_out, 2);
        let points: Vec<u64> = plan.chunks.iter().flat_map(|c| c.points.clone()).collect();
        assert_eq!(points.len(), 4);
        assert!(
            points.contains(&20),
            "important interval dropped: {points:?}"
        );
        let mut sorted = points.clone();
        sorted.sort_unstable();
        assert_eq!(points, sorted, "plan must be ascending");
        assert_eq!(plan.boundary_covered[BoundaryKind::FlushAck.index()], 1);
    }
}
