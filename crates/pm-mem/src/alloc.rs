//! A simple persistent-memory allocator for the workload data structures.
//!
//! Real PM applications use allocators such as PMDK's `pmemobj`; the
//! timing-relevant behaviour for this reproduction is only the *addresses*
//! handed out (they determine which memory controller a write targets), so
//! a bump allocator with size-class free lists suffices. Addresses are
//! cache-line aligned by default so independent objects never falsely
//! share a line.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use asap_sim_core::CACHE_LINE_BYTES;

/// Error returned when an allocation cannot be satisfied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// The requested size was zero.
    ZeroSize,
    /// The heap region is exhausted.
    OutOfMemory {
        /// Bytes requested by the failing allocation.
        requested: u64,
        /// Bytes remaining in the arena.
        remaining: u64,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::ZeroSize => f.write_str("zero-size allocation"),
            AllocError::OutOfMemory {
                requested,
                remaining,
            } => write!(
                f,
                "out of persistent memory: requested {requested} bytes, {remaining} remaining"
            ),
        }
    }
}

impl Error for AllocError {}

/// Bump allocator with per-size free lists over a fixed PM address range.
///
/// # Example
///
/// ```
/// use asap_pm_mem::PmAllocator;
/// let mut a = PmAllocator::new(0x1_0000, 1 << 20);
/// let x = a.alloc(64)?;
/// let y = a.alloc(64)?;
/// assert_ne!(x, y);
/// a.free(x, 64);
/// let z = a.alloc(64)?; // reuses the freed block
/// assert_eq!(z, x);
/// # Ok::<(), asap_pm_mem::AllocError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PmAllocator {
    base: u64,
    limit: u64,
    next: u64,
    free_lists: HashMap<u64, Vec<u64>>,
    allocated: u64,
}

impl PmAllocator {
    /// Create an allocator over `[base, base + size)`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not cache-line aligned or `size == 0`.
    pub fn new(base: u64, size: u64) -> PmAllocator {
        assert_eq!(
            base % CACHE_LINE_BYTES,
            0,
            "allocator base must be line-aligned"
        );
        assert!(size > 0, "allocator size must be nonzero");
        PmAllocator {
            base,
            limit: base + size,
            next: base,
            free_lists: HashMap::new(),
            allocated: 0,
        }
    }

    fn round_up(size: u64) -> u64 {
        // Round to cache-line multiples: avoids false sharing between
        // separately allocated objects and keeps flush accounting simple.
        size.div_ceil(CACHE_LINE_BYTES) * CACHE_LINE_BYTES
    }

    /// Allocate `size` bytes, cache-line aligned.
    ///
    /// # Errors
    ///
    /// [`AllocError::ZeroSize`] for zero-byte requests and
    /// [`AllocError::OutOfMemory`] when the arena is exhausted.
    pub fn alloc(&mut self, size: u64) -> Result<u64, AllocError> {
        if size == 0 {
            return Err(AllocError::ZeroSize);
        }
        let rounded = Self::round_up(size);
        if let Some(list) = self.free_lists.get_mut(&rounded) {
            if let Some(addr) = list.pop() {
                self.allocated += rounded;
                return Ok(addr);
            }
        }
        if self.next + rounded > self.limit {
            return Err(AllocError::OutOfMemory {
                requested: rounded,
                remaining: self.limit - self.next,
            });
        }
        let addr = self.next;
        self.next += rounded;
        self.allocated += rounded;
        Ok(addr)
    }

    /// Return a block previously obtained from [`alloc`](Self::alloc) with
    /// the same `size`.
    pub fn free(&mut self, addr: u64, size: u64) {
        let rounded = Self::round_up(size.max(1));
        self.free_lists.entry(rounded).or_default().push(addr);
        self.allocated = self.allocated.saturating_sub(rounded);
    }

    /// Bytes currently allocated.
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated
    }

    /// Base address of the arena.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Bytes never yet handed out (bump frontier to limit).
    pub fn untouched_bytes(&self) -> u64 {
        self.limit - self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_line_aligned_and_disjoint() {
        let mut a = PmAllocator::new(0x10_0000, 1 << 16);
        let mut addrs = Vec::new();
        for _ in 0..16 {
            let p = a.alloc(24).unwrap();
            assert_eq!(p % CACHE_LINE_BYTES, 0);
            addrs.push(p);
        }
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), 16);
        // 24 bytes rounds to one line each
        assert_eq!(a.allocated_bytes(), 16 * CACHE_LINE_BYTES);
    }

    #[test]
    fn free_list_reuse() {
        let mut a = PmAllocator::new(0, 1 << 12);
        let x = a.alloc(128).unwrap();
        a.free(x, 128);
        assert_eq!(a.alloc(128).unwrap(), x);
        // different size class does not reuse
        let y = a.alloc(64).unwrap();
        assert_ne!(y, x);
    }

    #[test]
    fn zero_size_rejected() {
        let mut a = PmAllocator::new(0, 4096);
        assert_eq!(a.alloc(0), Err(AllocError::ZeroSize));
    }

    #[test]
    fn out_of_memory_reports_remaining() {
        let mut a = PmAllocator::new(0, 128);
        a.alloc(64).unwrap();
        let err = a.alloc(128).unwrap_err();
        match err {
            AllocError::OutOfMemory {
                requested,
                remaining,
            } => {
                assert_eq!(requested, 128);
                assert_eq!(remaining, 64);
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(err.to_string().contains("out of persistent memory"));
    }

    #[test]
    #[should_panic(expected = "line-aligned")]
    fn misaligned_base_panics() {
        PmAllocator::new(7, 4096);
    }

    #[test]
    fn untouched_shrinks_with_bump_not_reuse() {
        let mut a = PmAllocator::new(0, 4096);
        let before = a.untouched_bytes();
        let x = a.alloc(64).unwrap();
        assert_eq!(a.untouched_bytes(), before - 64);
        a.free(x, 64);
        a.alloc(64).unwrap(); // reuse: frontier unchanged
        assert_eq!(a.untouched_bytes(), before - 64);
    }
}
