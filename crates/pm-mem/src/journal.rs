//! Golden write history for the crash-consistency oracle.
//!
//! Every persistent store executed by a workload appends a line-granularity
//! [`JournalEntry`] capturing the line's contents *after* the store and a
//! monotonically increasing sequence number. The sequence order is the
//! volatile memory (coherence) order of the writes, which is exactly the
//! order strong persist atomicity requires persists to respect per address
//! (paper §II-A).
//!
//! A store's *epoch* is only known when the timing simulator executes the
//! store micro-op (cross-thread dependencies split epochs at execution
//! time), so entries are recorded with no epoch and patched via
//! [`WriteJournal::assign_epoch`] at execution. Entries that still have no
//! epoch at crash time were never executed and are excluded from the
//! oracle's obligations.
//!
//! The oracle in `asap-core` uses the journal to machine-check, after a
//! simulated crash and recovery:
//!
//! 1. **per-address correctness** — each line in recovered NVM holds the
//!    value of a journaled write to that line, and
//! 2. **epoch prefix closure** — if any write of epoch `e` survived, then
//!    every write of every epoch that `e` (transitively) depends on also
//!    survived (Theorem 2 / the §IV-B ordering definition).
//!
//! Journaling is optional (disabled for long performance runs) because it
//! snapshots 64 bytes per store.

use crate::space::LineSnapshot;
use asap_sim_core::{EpochId, LineAddr};

/// Monotonic global sequence number of a journaled write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WriteSeq(pub u64);

/// One journaled line write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Global sequence number (volatile memory order).
    pub seq: WriteSeq,
    /// The epoch the store was executed in; `None` until the timing
    /// simulator executes the store micro-op.
    pub epoch: Option<EpochId>,
    /// The cache line written.
    pub line: LineAddr,
    /// Contents of the whole line after the store was applied to the
    /// functional image.
    pub data: LineSnapshot,
}

/// Append-only golden history of persistent line writes.
///
/// # Example
///
/// ```
/// use asap_pm_mem::WriteJournal;
/// use asap_sim_core::{EpochId, LineAddr, ThreadId};
///
/// let mut j = WriteJournal::enabled();
/// let seq = j.record(LineAddr::containing(0x40), [0u8; 64]);
/// assert_eq!(seq.0, 0);
/// j.assign_epoch(seq, EpochId::new(ThreadId(0), 0));
/// assert!(j.entries()[0].epoch.is_some());
/// ```
#[derive(Debug, Clone, Default)]
pub struct WriteJournal {
    entries: Vec<JournalEntry>,
    enabled: bool,
    next_seq: u64,
    /// Per-store "has executed in the timing domain" flags; maintained
    /// even when payload retention is disabled (the simulator's
    /// synchronization machinery needs them).
    executed: Vec<bool>,
    /// Per-store execution stamp on the dependency graph's
    /// registration/commit clock (see `DepGraph::now` in `asap-core`);
    /// `0` until the store executes. Lets the persist-race detector
    /// order "epoch committed" against "write executed" in real time.
    exec_clock: Vec<u64>,
    /// Latest store per line (generation order); also always maintained.
    last_store: std::collections::HashMap<LineAddr, WriteSeq>,
    /// Monotonic mutation counter: bumped on every [`record`] and
    /// [`assign_epoch`]. Within one deterministic run, two instants with
    /// the same version saw the identical mutation prefix, so the whole
    /// journal state is identical — the crash-space explorer keys its
    /// pruning digest on this.
    ///
    /// [`record`]: WriteJournal::record
    /// [`assign_epoch`]: WriteJournal::assign_epoch
    version: u64,
}

impl WriteJournal {
    /// A journal that records every write (crash-consistency testing).
    pub fn enabled() -> WriteJournal {
        WriteJournal {
            enabled: true,
            ..WriteJournal::default()
        }
    }

    /// A journal that only hands out sequence numbers and discards the
    /// payload (performance runs).
    pub fn disabled() -> WriteJournal {
        WriteJournal::default()
    }

    /// Whether entries are being retained.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record one write; returns its sequence number. When the journal is
    /// disabled the sequence number still advances so the rest of the
    /// simulator behaves identically.
    pub fn record(&mut self, line: LineAddr, data: LineSnapshot) -> WriteSeq {
        let seq = WriteSeq(self.next_seq);
        self.next_seq += 1;
        self.version += 1;
        self.executed.push(false);
        self.exec_clock.push(0);
        self.last_store.insert(line, seq);
        if self.enabled {
            self.entries.push(JournalEntry {
                seq,
                epoch: None,
                line,
                data,
            });
        }
        seq
    }

    /// Bind a previously recorded write to the epoch it executed in and
    /// mark it executed. The execution flag is tracked even when payload
    /// retention is disabled.
    pub fn assign_epoch(&mut self, seq: WriteSeq, epoch: EpochId) {
        self.version += 1;
        if let Some(f) = self.executed.get_mut(seq.0 as usize) {
            *f = true;
        }
        if !self.enabled {
            return;
        }
        if let Some(e) = self.entries.get_mut(seq.0 as usize) {
            debug_assert_eq!(e.seq, seq, "journal entries are dense");
            e.epoch = Some(epoch);
        }
    }

    /// Whether the store `seq` has executed in the timing domain.
    pub fn is_executed(&self, seq: WriteSeq) -> bool {
        self.executed.get(seq.0 as usize).copied().unwrap_or(false)
    }

    /// Stamp the execution instant of store `seq` on an external
    /// monotonic clock (the dependency graph's registration/commit
    /// clock). Maintained even when payload retention is disabled.
    pub fn note_exec_clock(&mut self, seq: WriteSeq, clock: u64) {
        if let Some(c) = self.exec_clock.get_mut(seq.0 as usize) {
            *c = clock;
        }
    }

    /// The execution stamp of store `seq`, if it executed.
    pub fn exec_clock_of(&self, seq: WriteSeq) -> Option<u64> {
        if self.is_executed(seq) {
            self.exec_clock.get(seq.0 as usize).copied()
        } else {
            None
        }
    }

    /// The latest (generation-order) store to `line`, if any.
    pub fn last_store(&self, line: LineAddr) -> Option<WriteSeq> {
        self.last_store.get(&line).copied()
    }

    /// Look up an entry by sequence number (entries are dense while
    /// enabled).
    pub fn get(&self, seq: WriteSeq) -> Option<&JournalEntry> {
        let e = self.entries.get(seq.0 as usize)?;
        debug_assert_eq!(e.seq, seq);
        Some(e)
    }

    /// All retained entries, in sequence order.
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// Entries belonging to the given (assigned) epoch.
    pub fn entries_of_epoch(&self, epoch: EpochId) -> impl Iterator<Item = &JournalEntry> {
        self.entries.iter().filter(move |e| e.epoch == Some(epoch))
    }

    /// Total writes recorded (including while disabled).
    pub fn writes_issued(&self) -> u64 {
        self.next_seq
    }

    /// Monotonic mutation counter (see the field docs): strictly
    /// increases on every record and epoch assignment.
    pub fn version(&self) -> u64 {
        self.version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_sim_core::ThreadId;

    fn ep(t: usize, ts: u64) -> EpochId {
        EpochId::new(ThreadId(t), ts)
    }

    #[test]
    fn sequence_numbers_are_monotonic() {
        let mut j = WriteJournal::enabled();
        let a = j.record(LineAddr::containing(0), [0; 64]);
        let b = j.record(LineAddr::containing(64), [0; 64]);
        assert!(a < b);
        assert_eq!(j.writes_issued(), 2);
    }

    #[test]
    fn disabled_journal_discards_but_counts() {
        let mut j = WriteJournal::disabled();
        assert!(!j.is_enabled());
        let s = j.record(LineAddr::containing(0), [1; 64]);
        j.record(LineAddr::containing(0), [2; 64]);
        j.assign_epoch(s, ep(0, 0)); // no-op, must not panic
        assert_eq!(j.entries().len(), 0);
        assert_eq!(j.writes_issued(), 2);
    }

    #[test]
    fn exec_clock_visible_only_after_execution() {
        let mut j = WriteJournal::enabled();
        let s = j.record(LineAddr::containing(0), [0; 64]);
        j.note_exec_clock(s, 9);
        // Not executed yet: the stamp stays hidden.
        assert_eq!(j.exec_clock_of(s), None);
        j.assign_epoch(s, ep(0, 0));
        assert_eq!(j.exec_clock_of(s), Some(9));
    }

    #[test]
    fn epoch_assignment_patches_entry() {
        let mut j = WriteJournal::enabled();
        let s0 = j.record(LineAddr::containing(0), [1; 64]);
        let s1 = j.record(LineAddr::containing(64), [2; 64]);
        j.assign_epoch(s1, ep(1, 3));
        assert_eq!(j.get(s0).unwrap().epoch, None);
        assert_eq!(j.get(s1).unwrap().epoch, Some(ep(1, 3)));
    }

    #[test]
    fn entries_of_epoch_filters_assigned_only() {
        let mut j = WriteJournal::enabled();
        let a = j.record(LineAddr::containing(0), [1; 64]);
        let b = j.record(LineAddr::containing(64), [2; 64]);
        j.record(LineAddr::containing(128), [3; 64]); // never executed
        j.assign_epoch(a, ep(0, 0));
        j.assign_epoch(b, ep(0, 0));
        assert_eq!(j.entries_of_epoch(ep(0, 0)).count(), 2);
        assert_eq!(j.entries_of_epoch(ep(1, 0)).count(), 0);
    }

    #[test]
    fn entries_preserve_payload() {
        let mut j = WriteJournal::enabled();
        let mut data = [0u8; 64];
        data[5] = 0xaa;
        let s = j.record(LineAddr::containing(0x1c0), data);
        let e = j.get(s).unwrap();
        assert_eq!(e.line, LineAddr::containing(0x1c0));
        assert_eq!(e.data[5], 0xaa);
    }
}
