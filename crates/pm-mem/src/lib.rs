//! Functional persistent-memory modelling for the ASAP reproduction.
//!
//! The simulator is a *functional + timing co-simulation*: workloads run as
//! ordinary Rust code against a byte-addressable [`PmSpace`] (the
//! "architectural" contents of persistent memory as the program sees it
//! through the cache hierarchy), while a separate [`NvmImage`] tracks what
//! has *actually persisted* to the NVM media at any instant of simulated
//! time. The gap between the two is exactly what a crash exposes, and what
//! ASAP's recovery tables must repair.
//!
//! Components:
//!
//! * [`PmSpace`] — paged, sparse, byte-addressable memory with typed
//!   accessors. This is the program-visible image.
//! * [`PmAllocator`] — a bump + free-list allocator used by the workload
//!   data structures.
//! * [`NvmImage`] — line-granularity persisted state, each line tagged
//!   with the journal sequence number and epoch of the write that owns its
//!   current value. Undo-record application during crash handling rolls
//!   lines back here.
//! * [`WriteJournal`] — the golden history of line writes in volatile
//!   (coherence) order, used by the crash-consistency oracle in
//!   `asap-core` to machine-check the paper's Theorems 1 and 2.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod alloc;
mod journal;
mod nvm;
mod pool;
mod space;

pub use alloc::{AllocError, PmAllocator};
pub use journal::{JournalEntry, WriteJournal, WriteSeq};
pub use nvm::{LineRecord, NvmImage};
pub use pool::SnapshotPool;
pub use space::{LineSnapshot, PmSpace};
