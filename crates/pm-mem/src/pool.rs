//! Free-list recycling of boxed line snapshots.
//!
//! Every simulated store snapshots its 64-byte line into a
//! `Box<LineSnapshot>` that travels store → persist buffer → flush →
//! ack. Allocating a fresh box per store puts the global allocator on
//! the hot path; a [`SnapshotPool`] recycles retired boxes instead, so
//! steady state (pool warm, persist buffers cycling) performs zero heap
//! allocation per store.
//!
//! The counters double as the benchmark's allocation audit: after
//! warm-up, [`fresh_allocs`](SnapshotPool::fresh_allocs) must stop
//! growing even as [`recycled`](SnapshotPool::recycled) tracks the store
//! count — see `sweep_bench`.
//!
//! # Example
//!
//! ```
//! use asap_pm_mem::SnapshotPool;
//!
//! let mut pool = SnapshotPool::new();
//! let b = pool.take([7u8; 64]);
//! pool.put(b);
//! let c = pool.take([9u8; 64]); // reuses the same buffer
//! assert_eq!(c[0], 9);
//! assert_eq!(pool.fresh_allocs(), 1);
//! assert_eq!(pool.recycled(), 1);
//! ```

use crate::space::LineSnapshot;

/// A free list of `Box<LineSnapshot>` buffers.
#[derive(Debug, Default)]
pub struct SnapshotPool {
    // The boxes themselves are the pooled resource: `take` must hand
    // back the identical allocation that `put` retired, so the free
    // list stores boxes, not values.
    #[allow(clippy::vec_box)]
    free: Vec<Box<LineSnapshot>>,
    fresh_allocs: u64,
    recycled: u64,
}

impl SnapshotPool {
    /// An empty pool.
    pub fn new() -> SnapshotPool {
        SnapshotPool::default()
    }

    /// Hand out a box holding `data`, reusing a retired buffer when one
    /// is available and allocating otherwise.
    #[inline]
    pub fn take(&mut self, data: LineSnapshot) -> Box<LineSnapshot> {
        match self.free.pop() {
            Some(mut b) => {
                self.recycled += 1;
                *b = data;
                b
            }
            None => {
                self.fresh_allocs += 1;
                Box::new(data)
            }
        }
    }

    /// Return a retired buffer to the free list.
    #[inline]
    pub fn put(&mut self, buf: Box<LineSnapshot>) {
        self.free.push(buf);
    }

    /// Buffers currently on the free list.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Boxes allocated fresh from the heap (bounded by peak in-flight
    /// snapshots, not by store count, once the pool is warm).
    pub fn fresh_allocs(&self) -> u64 {
        self.fresh_allocs
    }

    /// Takes served from the free list (allocation-free).
    pub fn recycled(&self) -> u64 {
        self.recycled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_is_allocation_free() {
        let mut pool = SnapshotPool::new();
        // Warm-up: 4 in-flight buffers.
        let bufs: Vec<_> = (0..4).map(|i| pool.take([i as u8; 64])).collect();
        for b in bufs {
            pool.put(b);
        }
        assert_eq!(pool.fresh_allocs(), 4);
        // Steady state: every take is served from the free list.
        for i in 0..100u32 {
            let b = pool.take([(i % 251) as u8; 64]);
            assert_eq!(b[0], (i % 251) as u8, "recycled buffer must be rewritten");
            pool.put(b);
        }
        assert_eq!(pool.fresh_allocs(), 4);
        assert_eq!(pool.recycled(), 100);
    }

    #[test]
    fn empty_pool_allocates() {
        let mut pool = SnapshotPool::new();
        assert_eq!(pool.available(), 0);
        let b = pool.take([1; 64]);
        assert_eq!(pool.fresh_allocs(), 1);
        pool.put(b);
        assert_eq!(pool.available(), 1);
    }
}
