//! Timing-accurate NVM media contents.
//!
//! [`NvmImage`] tracks, at cache-line granularity, the value that would be
//! found on the NVM media if power were cut *right now* (after the ADR
//! drain of the write-pending queues and — for ASAP — application of undo
//! records). Each line also carries the identity of the write that owns
//! its current value, which the crash-consistency oracle uses to validate
//! the recovered state against the write journal.

use crate::space::LineSnapshot;
use asap_sim_core::{mix64 as mix, EpochId, LineAddr, CACHE_LINE_BYTES};

/// Probe-table sentinel for an empty slot.
const EMPTY: u32 = u32::MAX;

/// Per-line persisted state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineRecord {
    /// Current media contents of the line.
    pub data: LineSnapshot,
    /// Sequence number (volatile order) of the journaled write whose value
    /// the line currently holds; `None` for lines restored from an undo
    /// record that predates journaling or never written.
    pub seq: Option<u64>,
    /// Epoch of the owning write, if known.
    pub epoch: Option<EpochId>,
}

impl Default for LineRecord {
    fn default() -> LineRecord {
        LineRecord {
            data: [0u8; CACHE_LINE_BYTES as usize],
            seq: None,
            epoch: None,
        }
    }
}

/// The persisted (media) image of NVM.
///
/// Unwritten lines read as zero with no owner, mirroring [`PmSpace`]
/// semantics for unbacked pages.
///
/// [`PmSpace`]: crate::PmSpace
///
/// # Example
///
/// ```
/// use asap_pm_mem::NvmImage;
/// use asap_sim_core::{EpochId, LineAddr, ThreadId};
///
/// let mut nvm = NvmImage::new();
/// let line = LineAddr::containing(0x80);
/// nvm.persist(line, [7u8; 64], Some(3), Some(EpochId::new(ThreadId(0), 1)));
/// assert_eq!(nvm.line(line).data[0], 7);
/// assert_eq!(nvm.line(line).seq, Some(3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NvmImage {
    /// Probe table: each slot is `EMPTY` or an index into `keys`/`recs`.
    /// Open-addressed (same scheme as `LineTable`/`PmSpace`): `persist`
    /// runs once per accepted flush, and a SipHash `HashMap` insert
    /// there was measurable sweep wall clock. Dense storage doubles as
    /// a deterministic (first-touch) iteration order for the oracle.
    slots: Vec<u32>,
    keys: Vec<LineAddr>,
    recs: Vec<LineRecord>,
    /// `slots.len() - 1` (capacity is a power of two).
    mask: usize,
    /// Whether the line was populated before the measured run (a
    /// pre-formatted pool): exempt from the oracle's "untagged lines
    /// are zero" check. Indexed like `keys`/`recs`.
    preinit: Vec<bool>,
    writes: u64,
    /// Monotonic mutation counter: bumped on every `persist`, `restore`
    /// and `preinit`. Within one deterministic run, equal versions imply
    /// the identical mutation prefix and hence identical media contents —
    /// the crash-space explorer keys its pruning digest on this.
    version: u64,
}

impl Default for NvmImage {
    fn default() -> NvmImage {
        NvmImage {
            slots: vec![EMPTY; 512],
            keys: Vec::new(),
            recs: Vec::new(),
            mask: 511,
            preinit: Vec::new(),
            writes: 0,
            version: 0,
        }
    }
}

impl NvmImage {
    /// Create an empty (all-zero) image.
    pub fn new() -> NvmImage {
        NvmImage::default()
    }

    /// Dense index of `line`'s record, if present.
    #[inline]
    fn lookup(&self, line: LineAddr) -> Option<usize> {
        let mut slot = (mix(line.index()) as usize) & self.mask;
        loop {
            let s = self.slots[slot];
            if s == EMPTY {
                return None;
            }
            if self.keys[s as usize] == line {
                return Some(s as usize);
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Dense index of `line`'s record, inserting a default record (and
    /// growing the probe table) on first touch.
    fn lookup_or_insert(&mut self, line: LineAddr) -> usize {
        if let Some(i) = self.lookup(line) {
            return i;
        }
        let idx = self.keys.len() as u32;
        assert!(idx != EMPTY, "NVM image overflow");
        self.keys.push(line);
        self.recs.push(LineRecord::default());
        self.preinit.push(false);
        let mut slot = (mix(line.index()) as usize) & self.mask;
        while self.slots[slot] != EMPTY {
            slot = (slot + 1) & self.mask;
        }
        self.slots[slot] = idx;
        if self.keys.len() * 2 > self.slots.len() {
            self.grow();
        }
        idx as usize
    }

    fn grow(&mut self) {
        let cap = self.slots.len() * 2;
        self.mask = cap - 1;
        self.slots.clear();
        self.slots.resize(cap, EMPTY);
        for (i, &line) in self.keys.iter().enumerate() {
            let mut slot = (mix(line.index()) as usize) & self.mask;
            while self.slots[slot] != EMPTY {
                slot = (slot + 1) & self.mask;
            }
            self.slots[slot] = i as u32;
        }
    }

    /// Current contents and ownership of `line` (zero/no-owner default for
    /// never-written lines).
    pub fn line(&self, line: LineAddr) -> LineRecord {
        self.lookup(line)
            .map_or_else(LineRecord::default, |i| self.recs[i].clone())
    }

    /// Apply a write to the media, recording its ownership tag.
    pub fn persist(
        &mut self,
        line: LineAddr,
        data: LineSnapshot,
        seq: Option<u64>,
        epoch: Option<EpochId>,
    ) {
        self.writes += 1;
        self.version += 1;
        let i = self.lookup_or_insert(line);
        self.recs[i] = LineRecord { data, seq, epoch };
    }

    /// Restore a line from an undo record during crash handling. The
    /// ownership tag reverts to the one captured when the undo record was
    /// created.
    pub fn restore(&mut self, line: LineAddr, record: LineRecord) {
        self.version += 1;
        let i = self.lookup_or_insert(line);
        self.recs[i] = record;
    }

    /// Populate a line as part of the *initial* pool contents (structure
    /// setup before the measured region — gem5's warmup analogue). The
    /// line carries no write tag; [`NvmImage::is_preinit`] marks it for
    /// the consistency oracle.
    pub fn preinit(&mut self, line: LineAddr, data: LineSnapshot) {
        self.version += 1;
        let i = self.lookup_or_insert(line);
        self.preinit[i] = true;
        self.recs[i] = LineRecord {
            data,
            seq: None,
            epoch: None,
        };
    }

    /// Whether `line` was part of the initial pool contents.
    pub fn is_preinit(&self, line: LineAddr) -> bool {
        self.lookup(line).is_some_and(|i| self.preinit[i])
    }

    /// Read a little-endian u64 from the media image.
    pub fn read_u64(&self, addr: u64) -> u64 {
        let line = LineAddr::containing(addr);
        let rec = self.line(line);
        let off = line.offset_of(addr).expect("address within line");
        let mut buf = [0u8; 8];
        // A u64 may straddle lines; handle the (rare) split read.
        if off + 8 <= CACHE_LINE_BYTES as usize {
            buf.copy_from_slice(&rec.data[off..off + 8]);
        } else {
            let first = CACHE_LINE_BYTES as usize - off;
            buf[..first].copy_from_slice(&rec.data[off..]);
            let next = self.line(LineAddr::containing(addr + first as u64));
            buf[first..].copy_from_slice(&next.data[..8 - first]);
        }
        u64::from_le_bytes(buf)
    }

    /// Total line writes applied to the media (Figure 9's write count is
    /// tracked at the MCs; this is a cross-check).
    pub fn media_writes(&self) -> u64 {
        self.writes
    }

    /// Iterate over all lines ever written, in first-touch order
    /// (deterministic by construction).
    pub fn iter(&self) -> impl Iterator<Item = (&LineAddr, &LineRecord)> {
        self.keys.iter().zip(&self.recs)
    }

    /// Number of distinct lines present.
    pub fn distinct_lines(&self) -> usize {
        self.keys.len()
    }

    /// Monotonic mutation counter (see the field docs): strictly
    /// increases on every persist/restore/preinit.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// FNV-1a digest of the full media contents in first-touch order:
    /// line addresses, data bytes, ownership tags and preinit marks.
    /// Lets the crash-space explorer compare recovered images without
    /// holding both in memory (the mutation `version` is deliberately
    /// excluded: two images reached by different mutation *histories*
    /// but identical final contents digest equal).
    pub fn content_digest(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let step = |h: &mut u64, b: u8| {
            *h ^= b as u64;
            *h = h.wrapping_mul(PRIME);
        };
        for (i, (line, rec)) in self.keys.iter().zip(&self.recs).enumerate() {
            for b in line.byte_addr().to_le_bytes() {
                step(&mut h, b);
            }
            for &b in &rec.data {
                step(&mut h, b);
            }
            step(&mut h, rec.seq.is_some() as u8);
            for b in rec.seq.unwrap_or(0).to_le_bytes() {
                step(&mut h, b);
            }
            step(&mut h, rec.epoch.is_some() as u8);
            if let Some(e) = rec.epoch {
                for b in (e.thread.0 as u64).to_le_bytes() {
                    step(&mut h, b);
                }
                for b in e.ts.to_le_bytes() {
                    step(&mut h, b);
                }
            }
            step(&mut h, self.preinit[i] as u8);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_sim_core::ThreadId;

    fn snap(b: u8) -> LineSnapshot {
        [b; CACHE_LINE_BYTES as usize]
    }

    #[test]
    fn unwritten_lines_are_zero() {
        let nvm = NvmImage::new();
        let rec = nvm.line(LineAddr::containing(0x1000));
        assert_eq!(rec.data, [0u8; 64]);
        assert_eq!(rec.seq, None);
        assert_eq!(rec.epoch, None);
        assert_eq!(nvm.distinct_lines(), 0);
    }

    #[test]
    fn persist_overwrites_and_tags() {
        let mut nvm = NvmImage::new();
        let line = LineAddr::containing(0);
        let e = EpochId::new(ThreadId(1), 4);
        nvm.persist(line, snap(1), Some(10), Some(e));
        nvm.persist(line, snap(2), Some(11), Some(e.next()));
        let rec = nvm.line(line);
        assert_eq!(rec.data[0], 2);
        assert_eq!(rec.seq, Some(11));
        assert_eq!(rec.epoch, Some(e.next()));
        assert_eq!(nvm.media_writes(), 2);
        assert_eq!(nvm.distinct_lines(), 1);
    }

    #[test]
    fn restore_rolls_back_tag_and_data() {
        let mut nvm = NvmImage::new();
        let line = LineAddr::containing(0x40);
        nvm.persist(line, snap(5), Some(1), None);
        let saved = nvm.line(line);
        nvm.persist(line, snap(9), Some(2), None);
        nvm.restore(line, saved);
        let rec = nvm.line(line);
        assert_eq!(rec.data[0], 5);
        assert_eq!(rec.seq, Some(1));
    }

    #[test]
    fn read_u64_within_line() {
        let mut nvm = NvmImage::new();
        let line = LineAddr::containing(0x80);
        let mut data = snap(0);
        data[8..16].copy_from_slice(&0xfeed_f00du64.to_le_bytes());
        nvm.persist(line, data, None, None);
        assert_eq!(nvm.read_u64(0x88), 0xfeed_f00d);
    }

    #[test]
    fn read_u64_straddling_lines() {
        let mut nvm = NvmImage::new();
        let l0 = LineAddr::containing(0);
        let l1 = LineAddr::containing(64);
        let v: u64 = 0x1122_3344_5566_7788;
        let bytes = v.to_le_bytes();
        let mut d0 = snap(0);
        d0[60..64].copy_from_slice(&bytes[0..4]);
        let mut d1 = snap(0);
        d1[0..4].copy_from_slice(&bytes[4..8]);
        nvm.persist(l0, d0, None, None);
        nvm.persist(l1, d1, None, None);
        assert_eq!(nvm.read_u64(60), v);
    }

    #[test]
    fn iter_visits_all_lines() {
        let mut nvm = NvmImage::new();
        for i in 0..5 {
            nvm.persist(LineAddr::containing(i * 64), snap(i as u8), None, None);
        }
        assert_eq!(nvm.iter().count(), 5);
    }
}
