//! Byte-addressable functional persistent-memory space.

use asap_sim_core::{mix64 as mix, LineAddr, CACHE_LINE_BYTES};

const PAGE_SHIFT: u32 = 12;
const PAGE_BYTES: usize = 1 << PAGE_SHIFT; // 4 kB

/// Probe-table sentinel for an empty slot.
const EMPTY: u32 = u32::MAX;

/// A 64-byte snapshot of one cache line's contents.
pub type LineSnapshot = [u8; CACHE_LINE_BYTES as usize];

/// Sparse, paged, byte-addressable memory: the *program-visible* contents
/// of persistent memory (i.e. what loads see through the cache
/// hierarchy).
///
/// Unbacked bytes read as zero, mirroring freshly-mapped PM pages.
///
/// The page table is a zero-dependency open-addressed map (linear
/// probing, multiplicative hashing) with a one-entry cache of the last
/// page touched: the workload programs funnel every functional load and
/// store through here — several lookups per simulated memory operation —
/// and a SipHash `HashMap` page walk was a measurable slice of the
/// sweep's wall clock. Accesses have strong page locality (a data
/// structure node and its line snapshot live on one page), so the cache
/// short-circuits most probes entirely.
///
/// # Example
///
/// ```
/// use asap_pm_mem::PmSpace;
/// let mut pm = PmSpace::new();
/// pm.write_u64(0x1000, 0xdead_beef);
/// assert_eq!(pm.read_u64(0x1000), 0xdead_beef);
/// assert_eq!(pm.read_u64(0x2000), 0); // unbacked reads as zero
/// ```
#[derive(Debug, Clone)]
pub struct PmSpace {
    /// Probe table: each slot is `EMPTY` or an index into `pnos`/`pages`.
    slots: Vec<u32>,
    /// Dense storage: `pnos[i]` is the page number of `pages[i]`.
    pnos: Vec<u64>,
    pages: Vec<Box<[u8; PAGE_BYTES]>>,
    /// `slots.len() - 1` (capacity is a power of two).
    mask: usize,
    /// Last page touched (`pno`, dense index), `EMPTY` when invalid.
    /// A `Cell` so the read path can refresh it through `&self`.
    last: std::cell::Cell<(u64, u32)>,
}

impl Default for PmSpace {
    fn default() -> PmSpace {
        PmSpace {
            slots: vec![EMPTY; 64],
            pnos: Vec::new(),
            pages: Vec::new(),
            mask: 63,
            last: std::cell::Cell::new((0, EMPTY)),
        }
    }
}

impl PmSpace {
    /// Create an empty space.
    pub fn new() -> PmSpace {
        PmSpace::default()
    }

    fn page_of(addr: u64) -> (u64, usize) {
        (addr >> PAGE_SHIFT, (addr as usize) & (PAGE_BYTES - 1))
    }

    /// Dense index of `pno`'s page, if backed (refreshes the one-entry
    /// cache on a hit).
    #[inline]
    fn lookup(&self, pno: u64) -> Option<usize> {
        let (lp, li) = self.last.get();
        if li != EMPTY && lp == pno {
            return Some(li as usize);
        }
        let mut slot = (mix(pno) as usize) & self.mask;
        loop {
            let s = self.slots[slot];
            if s == EMPTY {
                return None;
            }
            if self.pnos[s as usize] == pno {
                self.last.set((pno, s));
                return Some(s as usize);
            }
            slot = (slot + 1) & self.mask;
        }
    }

    fn page_mut(&mut self, pno: u64) -> &mut [u8; PAGE_BYTES] {
        let idx = match self.lookup(pno) {
            Some(i) => i,
            None => {
                let idx = self.pages.len() as u32;
                assert!(idx != EMPTY, "page table overflow");
                self.pnos.push(pno);
                self.pages.push(Box::new([0u8; PAGE_BYTES]));
                let mut slot = (mix(pno) as usize) & self.mask;
                while self.slots[slot] != EMPTY {
                    slot = (slot + 1) & self.mask;
                }
                self.slots[slot] = idx;
                if self.pages.len() * 2 > self.slots.len() {
                    self.grow();
                }
                self.last.set((pno, idx));
                idx as usize
            }
        };
        &mut self.pages[idx]
    }

    fn grow(&mut self) {
        let cap = self.slots.len() * 2;
        self.mask = cap - 1;
        self.slots.clear();
        self.slots.resize(cap, EMPTY);
        for (i, &pno) in self.pnos.iter().enumerate() {
            let mut slot = (mix(pno) as usize) & self.mask;
            while self.slots[slot] != EMPTY {
                slot = (slot + 1) & self.mask;
            }
            self.slots[slot] = i as u32;
        }
    }

    /// Read one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        let (pno, off) = Self::page_of(addr);
        self.lookup(pno).map_or(0, |i| self.pages[i][off])
    }

    /// Write one byte.
    pub fn write_u8(&mut self, addr: u64, v: u8) {
        let (pno, off) = Self::page_of(addr);
        self.page_mut(pno)[off] = v;
    }

    /// Read `buf.len()` bytes starting at `addr`.
    ///
    /// Works a page at a time: the hot path (line snapshots, word loads)
    /// costs one page lookup, not one per byte.
    pub fn read_bytes(&self, addr: u64, buf: &mut [u8]) {
        let mut addr = addr;
        let mut buf = buf;
        while !buf.is_empty() {
            let (pno, off) = Self::page_of(addr);
            let n = buf.len().min(PAGE_BYTES - off);
            match self.lookup(pno) {
                Some(i) => buf[..n].copy_from_slice(&self.pages[i][off..off + n]),
                None => buf[..n].fill(0),
            }
            addr += n as u64;
            buf = &mut buf[n..];
        }
    }

    /// Write `data` starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) {
        let mut addr = addr;
        let mut data = data;
        while !data.is_empty() {
            let (pno, off) = Self::page_of(addr);
            let n = data.len().min(PAGE_BYTES - off);
            self.page_mut(pno)[off..off + n].copy_from_slice(&data[..n]);
            addr += n as u64;
            data = &data[n..];
        }
    }

    /// Read a little-endian `u64`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        let mut buf = [0u8; 8];
        self.read_bytes(addr, &mut buf);
        u64::from_le_bytes(buf)
    }

    /// Write a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Read a little-endian `u32`.
    pub fn read_u32(&self, addr: u64) -> u32 {
        let mut buf = [0u8; 4];
        self.read_bytes(addr, &mut buf);
        u32::from_le_bytes(buf)
    }

    /// Write a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, v: u32) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Snapshot the 64-byte cache line containing `line`.
    pub fn snapshot_line(&self, line: LineAddr) -> LineSnapshot {
        let mut buf = [0u8; CACHE_LINE_BYTES as usize];
        self.read_bytes(line.byte_addr(), &mut buf);
        buf
    }

    /// Overwrite the 64-byte cache line at `line`.
    pub fn write_line(&mut self, line: LineAddr, data: &LineSnapshot) {
        self.write_bytes(line.byte_addr(), data);
    }

    /// Number of backed 4 kB pages (diagnostics).
    pub fn backed_pages(&self) -> usize {
        self.pages.len()
    }

    /// Iterate over backed pages as `(page_base_addr, bytes)` in
    /// first-touch order (deterministic by construction).
    pub fn iter_pages(&self) -> impl Iterator<Item = (u64, &[u8; PAGE_BYTES])> {
        self.pnos
            .iter()
            .zip(&self.pages)
            .map(|(&pno, p)| (pno << PAGE_SHIFT, &**p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialised() {
        let pm = PmSpace::new();
        assert_eq!(pm.read_u8(0), 0);
        assert_eq!(pm.read_u64(0xdead_0000), 0);
        assert_eq!(pm.backed_pages(), 0);
    }

    #[test]
    fn u64_round_trip() {
        let mut pm = PmSpace::new();
        pm.write_u64(0x100, u64::MAX - 3);
        assert_eq!(pm.read_u64(0x100), u64::MAX - 3);
    }

    #[test]
    fn u32_round_trip() {
        let mut pm = PmSpace::new();
        pm.write_u32(0x104, 0xabcd_1234);
        assert_eq!(pm.read_u32(0x104), 0xabcd_1234);
    }

    #[test]
    fn cross_page_write() {
        let mut pm = PmSpace::new();
        let addr = (1 << PAGE_SHIFT) - 4; // straddles a page boundary
        pm.write_u64(addr as u64, 0x1122_3344_5566_7788);
        assert_eq!(pm.read_u64(addr as u64), 0x1122_3344_5566_7788);
        assert_eq!(pm.backed_pages(), 2);
    }

    #[test]
    fn bytes_round_trip() {
        let mut pm = PmSpace::new();
        let data: Vec<u8> = (0..100).collect();
        pm.write_bytes(0x500, &data);
        let mut out = vec![0u8; 100];
        pm.read_bytes(0x500, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn line_snapshot_and_write() {
        let mut pm = PmSpace::new();
        let line = LineAddr::containing(0x1040);
        pm.write_u64(0x1040, 7);
        pm.write_u64(0x1078, 9);
        let snap = pm.snapshot_line(line);
        assert_eq!(u64::from_le_bytes(snap[0..8].try_into().unwrap()), 7);
        assert_eq!(u64::from_le_bytes(snap[56..64].try_into().unwrap()), 9);

        let mut pm2 = PmSpace::new();
        pm2.write_line(line, &snap);
        assert_eq!(pm2.read_u64(0x1040), 7);
        assert_eq!(pm2.read_u64(0x1078), 9);
    }

    #[test]
    fn overwrites_are_visible() {
        let mut pm = PmSpace::new();
        pm.write_u64(0x10, 1);
        pm.write_u64(0x10, 2);
        assert_eq!(pm.read_u64(0x10), 2);
    }
}
