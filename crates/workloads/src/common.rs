//! Shared workload plumbing: the PM address-space layout, per-thread
//! arenas, spin locks, and the parameter block.

use asap_core::BurstCtx;
use asap_pm_mem::PmAllocator;
use asap_sim_core::{DetRng, ThreadId};

/// Base of the globals region (locks, root pointers, init flags).
pub const GLOBALS_BASE: u64 = 0x1000;

/// Base of structure-static regions (bucket arrays, directories).
pub const STATIC_BASE: u64 = 0x4000_0000;

/// Base of the per-thread allocation arenas.
pub const ARENA_BASE: u64 = 0x1_0000_0000;

/// Size of each per-thread arena (64 MiB).
pub const ARENA_SIZE: u64 = 64 * 1024 * 1024;

/// Tunable parameters shared by every workload.
#[derive(Debug, Clone)]
pub struct WorkloadParams {
    /// Number of worker threads (== cores simulated).
    pub threads: usize,
    /// Logical operations each thread performs.
    pub ops_per_thread: u64,
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
    /// Value payload size in bytes (paper: 16–128 B).
    pub value_bytes: usize,
    /// Fraction of operations that are updates (paper configures
    /// update-intensive workloads).
    pub update_fraction: f64,
    /// Key-space size each thread draws keys from.
    pub key_space: u64,
    /// Volatile application compute per logical operation, in cycles
    /// (request parsing, memory management, hashing — work that real
    /// applications do between persistent operations).
    pub think_cycles: u64,
    /// Optional Zipfian skew for key selection (`None` = uniform).
    /// Typical YCSB-style skew is `Some(0.99)`; higher values
    /// concentrate traffic on fewer keys and raise cross-thread
    /// contention.
    pub zipf_theta: Option<f64>,
}

impl Default for WorkloadParams {
    fn default() -> WorkloadParams {
        WorkloadParams {
            threads: 4,
            ops_per_thread: 200,
            seed: 42,
            value_bytes: 64,
            update_fraction: 0.9,
            // Update-intensive regime: a working set small enough that
            // concurrent threads actually collide on hot lines (the
            // paper configures all workloads update-intensive; a huge
            // uniform key space would hide the cross-thread dependencies
            // its Figure 2 shows for the concurrent structures).
            key_space: 4096,
            think_cycles: 400,
            zipf_theta: None,
        }
    }
}

impl WorkloadParams {
    /// Deterministic per-thread RNG.
    pub fn rng_for(&self, thread: usize) -> DetRng {
        DetRng::seed(self.seed).split(thread as u64 + 1)
    }

    /// Build the key sampler implied by these parameters.
    pub fn key_sampler(&self) -> KeySampler {
        match self.zipf_theta {
            Some(theta) => KeySampler::zipf(self.key_space, theta),
            None => KeySampler::uniform(self.key_space),
        }
    }
}

/// Key-distribution sampler: uniform or Zipfian (Gray et al.'s
/// incremental approximation, the one YCSB uses).
#[derive(Debug, Clone)]
pub enum KeySampler {
    /// Uniform over `[1, n]`.
    Uniform {
        /// Key-space size.
        n: u64,
    },
    /// Zipfian over `[1, n]` with parameter `theta`.
    Zipf {
        /// Key-space size.
        n: u64,
        /// Skew parameter in `(0, 1)` (0.99 = YCSB default); exactly 0
        /// degrades to the [`KeySampler::Uniform`] variant instead.
        theta: f64,
        /// Precomputed normalization constant.
        zetan: f64,
        /// Precomputed `eta`.
        eta: f64,
        /// Precomputed `alpha`.
        alpha: f64,
    },
}

impl KeySampler {
    /// A uniform sampler over `[1, n]`.
    pub fn uniform(n: u64) -> KeySampler {
        KeySampler::Uniform { n: n.max(1) }
    }

    /// A Zipfian sampler over `[1, n]`.
    ///
    /// `theta == 0` is exactly uniform and returns the
    /// [`KeySampler::Uniform`] variant, so skew sweeps can run all the
    /// way down to no skew.
    ///
    /// # Panics
    ///
    /// Panics if `theta` is not in `[0, 1)`.
    pub fn zipf(n: u64, theta: f64) -> KeySampler {
        assert!(
            (0.0..1.0).contains(&theta),
            "zipf theta must be in [0,1), got {theta}"
        );
        if theta == 0.0 {
            return KeySampler::uniform(n);
        }
        let n = n.max(1);
        let zetan: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let zeta2: f64 = (1..=2.min(n)).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let alpha = 1.0 / (1.0 - theta);
        // For n <= 2 the denominator `1 - zeta2/zetan` is exactly zero
        // (zeta2 == zetan), which used to store a NaN/∞ eta. Sampling
        // never consults eta for n <= 2 — the two head-probability
        // branches cover the whole key space — so any finite value is
        // correct; use 0.
        let eta = if n <= 2 {
            0.0
        } else {
            (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan)
        };
        KeySampler::Zipf {
            n,
            theta,
            zetan,
            eta,
            alpha,
        }
    }

    /// Draw a key in `[1, n]`.
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        match *self {
            KeySampler::Uniform { n } => rng.below(n) + 1,
            KeySampler::Zipf {
                n,
                theta,
                zetan,
                eta,
                alpha,
            } => {
                let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let uz = u * zetan;
                if uz < 1.0 {
                    return 1;
                }
                if uz < 1.0 + 0.5f64.powf(theta) {
                    return 2;
                }
                let k = 1.0 + (n as f64) * (eta * u - eta + 1.0).powf(alpha);
                (k as u64).clamp(1, n)
            }
        }
    }
}

/// A per-thread persistent-memory arena.
///
/// Threads allocate from disjoint regions so allocation itself needs no
/// synchronization (mirroring per-thread allocator classes in PMDK).
#[derive(Debug, Clone)]
pub struct Arena {
    alloc: PmAllocator,
}

impl Arena {
    /// The arena of `thread`.
    pub fn for_thread(thread: usize) -> Arena {
        Arena {
            alloc: PmAllocator::new(ARENA_BASE + thread as u64 * ARENA_SIZE, ARENA_SIZE),
        }
    }

    /// Allocate `size` bytes of persistent memory.
    ///
    /// # Panics
    ///
    /// Panics when the arena is exhausted (workloads are sized well under
    /// the 64 MiB arenas; exhaustion indicates a leak).
    pub fn alloc(&mut self, size: u64) -> u64 {
        self.alloc.alloc(size).expect("arena exhausted")
    }

    /// Return a block for reuse.
    pub fn free(&mut self, addr: u64, size: u64) {
        self.alloc.free(addr, size);
    }
}

/// A fair ticket spin lock over a two-line PM cell, used with
/// acquire/release annotations (§V: "We use acquire/release annotations
/// in our programs").
///
/// Layout: `addr` = next-ticket word (taken by atomic fetch-add),
/// `addr + 64` = now-serving word. The two words live on *separate
/// lines* so the release-store edge on the serving line is never
/// clobbered (at line granularity, where synchronization is tracked) by
/// other waiters' ticket grabs. FIFO hand-off also removes the
/// spin-convoy noise a test-and-set lock injects into model comparisons.
pub const LOCK_CELL_BYTES: u64 = 128;

/// A fair ticket spin lock over a two-line (`LOCK_CELL_BYTES`) PM cell.
#[derive(Debug, Clone, Copy)]
pub struct SpinLock {
    addr: u64,
}

impl SpinLock {
    /// A lock cell at `addr` (must be zero-initialized = unlocked, and
    /// own the full 128-byte cell).
    pub fn at(addr: u64) -> SpinLock {
        SpinLock { addr }
    }

    /// A striped lock from a per-structure lock table: `region` holds
    /// `stripes` cells of [`LOCK_CELL_BYTES`].
    pub fn striped(region: u64, key: u64, stripes: u64) -> SpinLock {
        SpinLock {
            addr: region + (key % stripes) * LOCK_CELL_BYTES,
        }
    }

    /// The lock cell's base address.
    pub fn addr(&self) -> u64 {
        self.addr
    }

    /// Take a ticket (atomic fetch-add on the ticket word).
    pub fn take_ticket(&self, ctx: &mut BurstCtx<'_>) -> u64 {
        let t = ctx.peek_u64(self.addr);
        let won = ctx.cas_u64(self.addr, t, t + 1);
        debug_assert!(won, "generation instants are serialized");
        t
    }

    /// Whether `ticket` is now being served. Spin probes are plain loads
    /// (a not-yet-served value establishes no happens-before); only the
    /// successful observation performs the synchronizing acquire-load,
    /// so each hand-off creates exactly one acquire→release edge.
    pub fn is_serving(&self, ctx: &mut BurstCtx<'_>, ticket: u64) -> bool {
        if ctx.load_u64(self.addr + 64) == ticket {
            let _ = ctx.acquire_load(self.addr + 64);
            true
        } else {
            false
        }
    }

    /// Release the lock, serving the next ticket (annotated
    /// release-store).
    pub fn release(&self, ctx: &mut BurstCtx<'_>, ticket: u64) {
        ctx.release_store(self.addr + 64, ticket + 1);
    }
}

/// Base of the striped lock tables (one region per structure; 4096 cells
/// each).
pub(crate) fn lock_region(id: u8) -> u64 {
    STATIC_BASE + 0x2000_0000 + id as u64 * 0x0010_0000
}

/// Stripes per lock table.
pub(crate) const LOCK_STRIPES: u64 = 4096;

/// Lock-protocol driver shared by the lock-based workloads: the ticket
/// grab and critical section share a burst once the lock is served (the
/// acquire's dependency split lands before the critical stores execute);
/// the release occupies its *own* burst so the functional unlock becomes
/// visible to other threads only after the critical section executed in
/// simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockPhase {
    /// Attempting to take the lock (ticket held once `Some`).
    Acquiring(Option<u64>),
    /// Critical section emitted; release next burst (carries the ticket).
    Releasing(u64),
}

impl LockPhase {
    /// A fresh protocol instance (no ticket taken yet).
    pub fn start() -> LockPhase {
        LockPhase::Acquiring(None)
    }
}

/// Outcome of one [`LockPhase::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockStep {
    /// Lock not obtained; a backoff was emitted — call again next burst.
    StillAcquiring,
    /// Lock obtained in this burst: emit the critical section *now* (the
    /// phase has already advanced to the releasing state).
    EnterCritical,
    /// The release store was emitted; the operation is finished.
    Released,
}

impl LockPhase {
    /// Drive one burst of the protocol.
    pub fn step(
        &mut self,
        lock: SpinLock,
        ctx: &mut BurstCtx<'_>,
        _tid: ThreadId,
        backoff: u64,
    ) -> LockStep {
        match *self {
            LockPhase::Acquiring(ticket) => {
                let ticket = ticket.unwrap_or_else(|| lock.take_ticket(ctx));
                if lock.is_serving(ctx, ticket) {
                    *self = LockPhase::Releasing(ticket);
                    LockStep::EnterCritical
                } else {
                    *self = LockPhase::Acquiring(Some(ticket));
                    ctx.compute(backoff);
                    LockStep::StillAcquiring
                }
            }
            LockPhase::Releasing(ticket) => {
                lock.release(ctx, ticket);
                *self = LockPhase::Acquiring(None);
                LockStep::Released
            }
        }
    }
}

/// Initialization guard: the first thread to run claims the init flag
/// (untimed — setup is not part of the measured region, like gem5's warmup
/// phase) and performs setup; all threads call this, only one runs `f`.
pub fn init_once<F: FnOnce(&mut BurstCtx<'_>)>(ctx: &mut BurstCtx<'_>, flag_addr: u64, f: F) {
    if ctx.peek_u64(flag_addr) == 0 {
        ctx.poke_u64(flag_addr, 1);
        f(ctx);
    }
}

/// FNV-1a hash for key placement (cheap and deterministic).
pub fn fnv1a(key: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_pm_mem::{PmSpace, WriteJournal};

    #[test]
    fn arenas_are_disjoint() {
        let mut a0 = Arena::for_thread(0);
        let mut a1 = Arena::for_thread(1);
        let x = a0.alloc(128);
        let y = a1.alloc(128);
        assert!(x < ARENA_BASE + ARENA_SIZE);
        assert!(y >= ARENA_BASE + ARENA_SIZE);
    }

    #[test]
    fn spinlock_tickets_are_fifo() {
        let mut pm = PmSpace::new();
        let mut j = WriteJournal::disabled();
        let mut ctx = BurstCtx::new(&mut pm, &mut j);
        let lock = SpinLock::at(GLOBALS_BASE);
        let t0 = lock.take_ticket(&mut ctx);
        let t1 = lock.take_ticket(&mut ctx);
        assert_eq!((t0, t1), (0, 1));
        assert!(lock.is_serving(&mut ctx, t0));
        assert!(!lock.is_serving(&mut ctx, t1));
        lock.release(&mut ctx, t0);
        assert!(lock.is_serving(&mut ctx, t1));
    }

    #[test]
    fn lock_phase_protocol() {
        let mut pm = PmSpace::new();
        let mut j = WriteJournal::disabled();
        let mut ctx = BurstCtx::new(&mut pm, &mut j);
        let lock = SpinLock::at(GLOBALS_BASE + 64);
        let mut phase = LockPhase::start();
        assert_eq!(
            phase.step(lock, &mut ctx, ThreadId(0), 10),
            LockStep::EnterCritical
        );
        // A competitor queues behind us while we hold it.
        let mut other = LockPhase::start();
        assert_eq!(
            other.step(lock, &mut ctx, ThreadId(1), 10),
            LockStep::StillAcquiring
        );
        assert_eq!(
            phase.step(lock, &mut ctx, ThreadId(0), 10),
            LockStep::Released
        );
        assert_eq!(phase, LockPhase::start());
        // FIFO: the queued competitor is served next.
        assert_eq!(
            other.step(lock, &mut ctx, ThreadId(1), 10),
            LockStep::EnterCritical
        );
    }

    #[test]
    fn init_once_runs_once() {
        let mut pm = PmSpace::new();
        let mut j = WriteJournal::disabled();
        let mut ctx = BurstCtx::new(&mut pm, &mut j);
        let mut runs = 0;
        init_once(&mut ctx, GLOBALS_BASE + 128, |_| runs += 1);
        init_once(&mut ctx, GLOBALS_BASE + 128, |_| runs += 1);
        assert_eq!(runs, 1);
    }

    #[test]
    fn fnv_spreads_keys() {
        let a = fnv1a(1);
        let b = fnv1a(2);
        assert_ne!(a, b);
        assert_ne!(a & 0xff, 0); // not degenerate
    }

    #[test]
    fn zipf_sampler_skews_toward_small_keys() {
        let mut rng = DetRng::seed(9);
        let s = KeySampler::zipf(1000, 0.99);
        let mut head = 0u64;
        let draws = 20_000;
        for _ in 0..draws {
            let k = s.sample(&mut rng);
            assert!((1..=1000).contains(&k));
            if k <= 10 {
                head += 1;
            }
        }
        // Under uniform, keys 1..=10 get ~1%; Zipf(0.99) gives them far
        // more.
        assert!(
            head as f64 / draws as f64 > 0.2,
            "zipf not skewed: {head}/{draws}"
        );
    }

    #[test]
    fn uniform_sampler_covers_space() {
        let mut rng = DetRng::seed(9);
        let s = KeySampler::uniform(8);
        let mut seen = [false; 9];
        for _ in 0..500 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1..=8].iter().all(|&b| b));
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn zipf_rejects_bad_theta() {
        KeySampler::zipf(10, 1.5);
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn zipf_rejects_negative_theta() {
        KeySampler::zipf(10, -0.1);
    }

    #[test]
    fn zipf_theta_zero_degrades_to_uniform() {
        // Regression: the doc promised "0 = uniform" but the constructor
        // asserted theta > 0. theta == 0 *is* uniform; return that.
        let s = KeySampler::zipf(8, 0.0);
        assert!(matches!(s, KeySampler::Uniform { n: 8 }));
        let mut rng = DetRng::seed(3);
        let mut seen = [false; 9];
        for _ in 0..500 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1..=8].iter().all(|&b| b));
    }

    #[test]
    fn zipf_tiny_key_spaces_have_finite_eta() {
        // Regression: for n == 1 (and n == 2) `zeta2 == zetan`, so the
        // eta denominator `1 - zeta2/zetan` was exactly 0 and eta was
        // stored as NaN/∞. Sampling happened not to consult eta for
        // n <= 2, but the poisoned constant leaked from the public field.
        for n in [1u64, 2, 3] {
            let s = KeySampler::zipf(n, 0.99);
            match s {
                KeySampler::Zipf { eta, zetan, .. } => {
                    assert!(eta.is_finite(), "n={n}: eta={eta}");
                    assert!(zetan.is_finite() && zetan > 0.0, "n={n}: zetan={zetan}");
                }
                KeySampler::Uniform { .. } => panic!("n={n}: expected Zipf variant"),
            }
            let mut rng = DetRng::seed(7);
            for _ in 0..200 {
                let k = s.sample(&mut rng);
                assert!((1..=n).contains(&k), "n={n}: sampled {k}");
            }
        }
        // n == 1 must always answer the only key.
        let one = KeySampler::zipf(1, 0.5);
        let mut rng = DetRng::seed(11);
        for _ in 0..50 {
            assert_eq!(one.sample(&mut rng), 1);
        }
    }

    #[test]
    fn params_rng_deterministic_per_thread() {
        let p = WorkloadParams::default();
        let mut r1 = p.rng_for(0);
        let mut r2 = p.rng_for(0);
        let mut r3 = p.rng_for(1);
        assert_eq!(r1.next_u64(), r2.next_u64());
        let _ = r3.next_u64();
    }
}
