//! Post-crash structural recovery verifiers.
//!
//! Real persistent data structures ship *recovery code*: after a crash,
//! they walk the structure on NVM, discard torn (half-published) entries
//! and re-establish invariants. This module implements that walk for each
//! Table III structure — but over the **recovered NVM image** of the
//! simulator, i.e. what ADR + ASAP's undo records actually left on the
//! media.
//!
//! These checks complement the ordering oracle in `asap-core`: the oracle
//! proves the recovered image is ordering-consistent with the write
//! journal; the verifiers here prove that ordering consistency is
//! *sufficient* for each structure's documented recovery procedure — the
//! property the structures' own papers rely on. Each publication protocol
//! has an invariant of the form "if the publishing word is visible, the
//! payload it guards is fully persisted":
//!
//! | structure | publish word | guarded payload |
//! |---|---|---|
//! | CCEH / Dash-EH | slot key (CAS) | value blob, first word == key |
//! | P-CLHT, Dash-LH | pair key | pair value == key ^ tag |
//! | Memcached | bucket head pointer | item key + value lines |
//! | FAST&FAIR | leaf count / shifted keys | sorted order (duplicates transiently allowed) |
//! | Atlas queue | predecessor's next pointer | node value ≠ 0 |
//! | Atlas skiplist | level-0 link | node key/value, ascending keys |
//! | P-ART | parent slot (CAS) | leaf key + value lines |
//!
//! A *torn* entry (publish word absent) is fine — recovery discards it; a
//! published entry with missing payload is a **violation**.

use crate::{apps::memcached, art, atlas, btree, clht, exthash, levelhash};
use asap_pm_mem::NvmImage;

/// Outcome of one structural recovery walk.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Fully-published entries found live on the recovered media.
    pub live_entries: u64,
    /// Half-published entries a real recovery pass would discard
    /// (allowed).
    pub torn_entries: u64,
    /// Invariant violations (must be empty).
    pub violations: Vec<String>,
}

impl RecoveryReport {
    /// Whether the structure is recoverable.
    pub fn is_recoverable(&self) -> bool {
        self.violations.is_empty()
    }

    fn violate(&mut self, msg: String) {
        if self.violations.len() < 16 {
            self.violations.push(msg);
        }
    }
}

/// Walk the recovered CCEH / Dash-EH table: every published slot
/// (key ≠ 0 and value pointer ≠ 0) must point at a fully persisted value
/// blob whose first word equals the key.
pub fn verify_exthash(nvm: &NvmImage) -> RecoveryReport {
    let mut r = RecoveryReport::default();
    let mut seen_segs = std::collections::HashSet::new();
    for d in 0..exthash::DIR_ENTRIES {
        let seg = nvm.read_u64(exthash::EXT_DIR + d * 8);
        if seg == 0 || !seen_segs.insert(seg) {
            continue;
        }
        for b in 0..exthash::BUCKETS_PER_SEG {
            for s in 0..exthash::PAIRS_PER_BUCKET {
                let slot = exthash::slot_addr(exthash::bucket_addr(seg, b), s);
                let key = nvm.read_u64(slot);
                if key == 0 {
                    continue;
                }
                let blob = nvm.read_u64(slot + 8);
                if blob == 0 {
                    r.torn_entries += 1; // key CASed, pointer not yet durable
                    continue;
                }
                let first = nvm.read_u64(blob);
                if first != key {
                    r.violate(format!(
                        "cceh: slot {slot:#x} key {key} published but blob word is {first}"
                    ));
                } else {
                    r.live_entries += 1;
                }
            }
        }
    }
    r
}

/// Walk the recovered P-CLHT table: a visible key guards its value
/// (`key ^ 0xc1e4`), published value-before-key.
pub fn verify_clht(nvm: &NvmImage) -> RecoveryReport {
    let mut r = RecoveryReport::default();
    for b in 0..clht::BUCKETS {
        let mut bucket = clht::bucket_addr(b);
        let mut hops = 0;
        loop {
            for i in 0..clht::PAIRS {
                let key = nvm.read_u64(clht::pair_addr(bucket, i));
                if key == 0 {
                    continue;
                }
                let val = nvm.read_u64(clht::pair_addr(bucket, i) + 8);
                if val != key ^ 0xc1e4 {
                    r.violate(format!(
                        "clht: bucket {b} key {key} visible but value {val:#x} not persisted"
                    ));
                } else {
                    r.live_entries += 1;
                }
            }
            bucket = nvm.read_u64(clht::next_addr(bucket));
            hops += 1;
            if bucket == 0 {
                break;
            }
            if hops > 1000 {
                r.violate(format!("clht: overflow chain cycle at bucket {b}"));
                break;
            }
        }
    }
    r
}

/// Walk the recovered Dash-LH table (both levels + stash).
pub fn verify_levelhash(nvm: &NvmImage) -> RecoveryReport {
    let mut r = RecoveryReport::default();
    let check_bucket = |r: &mut RecoveryReport, bucket: u64| {
        for i in 0..levelhash::PAIRS {
            let key = nvm.read_u64(levelhash::pair_addr(bucket, i));
            if key == 0 {
                continue;
            }
            let val = nvm.read_u64(levelhash::pair_addr(bucket, i) + 8);
            if val != key ^ 0x1e4e {
                r.violate(format!(
                    "dash-lh: bucket {bucket:#x} key {key} visible, value {val:#x} missing"
                ));
            } else {
                r.live_entries += 1;
            }
        }
    };
    for b in 0..levelhash::TOP_BUCKETS {
        check_bucket(&mut r, levelhash::top_bucket(b));
    }
    for b in 0..levelhash::BOTTOM_BUCKETS {
        check_bucket(&mut r, levelhash::bottom_bucket(b));
    }
    for s in 0..levelhash::STASH_SLOTS {
        let slot = levelhash::STASH_REGION + s * 64;
        let key = nvm.read_u64(slot);
        if key == 0 {
            continue;
        }
        let val = nvm.read_u64(slot + 8);
        if val != key ^ 0x1e4e {
            r.violate(format!("dash-lh: stash slot {s} key {key} torn value"));
        } else {
            r.live_entries += 1;
        }
    }
    r
}

/// Walk the recovered memcached chains: every item reachable from a
/// bucket head pointer must be fully persisted (key ≠ 0, value word ==
/// key), chains acyclic.
pub fn verify_memcached(nvm: &NvmImage) -> RecoveryReport {
    let mut r = RecoveryReport::default();
    for b in 0..memcached::BUCKETS {
        let mut item = nvm.read_u64(memcached::BUCKET_REGION + b * 64);
        let mut hops = 0;
        while item != 0 {
            hops += 1;
            if hops > 10_000 {
                r.violate(format!("memcached: cycle in bucket {b}"));
                break;
            }
            let key = nvm.read_u64(item);
            if key == 0 {
                r.violate(format!(
                    "memcached: bucket {b} links an unpersisted item at {item:#x}"
                ));
                break;
            }
            let v0 = nvm.read_u64(item + 64);
            if v0 != key {
                r.violate(format!(
                    "memcached: item {item:#x} key {key} but value word {v0}"
                ));
            } else {
                r.live_entries += 1;
            }
            item = nvm.read_u64(item + 8);
        }
    }
    r
}

/// Walk the recovered FAST&FAIR leaf chain: within each leaf, keys must
/// be non-decreasing (FAST's shift discipline transiently allows
/// duplicates, never inversions), and leaf links must be acyclic.
pub fn verify_fastfair(nvm: &NvmImage) -> RecoveryReport {
    let mut r = RecoveryReport::default();
    let root = nvm.read_u64(btree::BT_ROOT_PTR);
    if root == 0 {
        return r; // nothing persisted yet: trivially recoverable
    }
    // Descend to the leftmost leaf.
    let mut node = root;
    let mut depth = 0;
    while nvm.read_u64(node + btree::HDR_LEAF) == 0 {
        node = nvm.read_u64(btree::pair_addr(node, 0) + 8);
        depth += 1;
        if node == 0 || depth > 16 {
            // An inner node whose leftmost child is not yet durable: the
            // split publication order (child before parent) was violated.
            r.violate("fast_fair: inner node points at unpersisted child".into());
            return r;
        }
    }
    let mut hops = 0;
    while node != 0 {
        hops += 1;
        if hops > 100_000 {
            r.violate("fast_fair: leaf chain cycle".into());
            break;
        }
        let count = nvm.read_u64(node + btree::HDR_COUNT);
        if count > btree::FANOUT {
            r.violate(format!(
                "fast_fair: leaf {node:#x} count {count} out of range"
            ));
            break;
        }
        let mut last = 0;
        for i in 0..count {
            let k = nvm.read_u64(btree::pair_addr(node, i));
            if k < last {
                r.violate(format!(
                    "fast_fair: leaf {node:#x} keys inverted ({k} after {last})"
                ));
            }
            last = k;
            r.live_entries += 1;
        }
        node = nvm.read_u64(node + btree::HDR_SIBLING);
    }
    r
}

/// Walk the recovered Atlas queue from the head pointer: the chain must
/// be acyclic and every linked node persisted (value ≠ 0) — the enqueue
/// protocol persists the node before linking it.
pub fn verify_queue(nvm: &NvmImage) -> RecoveryReport {
    let mut r = RecoveryReport::default();
    let head = nvm.read_u64(atlas::queue::Q_HEAD);
    if head == 0 {
        return r;
    }
    // The sentinel's value is 0 by construction; check nodes after it.
    let mut node = nvm.read_u64(head + 8);
    let mut hops = 0;
    while node != 0 {
        hops += 1;
        if hops > 100_000 {
            r.violate("queue: cycle".into());
            break;
        }
        let v = nvm.read_u64(node);
        if v == 0 {
            r.violate(format!("queue: linked node {node:#x} not persisted"));
            break;
        }
        r.live_entries += 1;
        node = nvm.read_u64(node + 8);
    }
    r
}

/// Walk the recovered Atlas skip list at level 0: keys strictly
/// ascending, every linked node fully persisted (`value == key ^ 0xfeed`).
pub fn verify_skiplist(nvm: &NvmImage) -> RecoveryReport {
    let mut r = RecoveryReport::default();
    let head = nvm.read_u64(atlas::skiplist::SL_HEAD);
    if head == 0 {
        return r;
    }
    let mut node = nvm.read_u64(atlas::skiplist::next_addr(head, 0));
    let mut last = 0;
    let mut hops = 0;
    while node != 0 {
        hops += 1;
        if hops > 100_000 {
            r.violate("skiplist: cycle".into());
            break;
        }
        let key = nvm.read_u64(node);
        if key == 0 {
            r.violate(format!("skiplist: linked node {node:#x} not persisted"));
            break;
        }
        if key <= last {
            r.violate(format!("skiplist: keys out of order ({key} after {last})"));
        }
        let val = nvm.read_u64(node + 8);
        if val != key ^ 0xfeed {
            r.violate(format!("skiplist: node {node:#x} torn value"));
        }
        last = key;
        r.live_entries += 1;
        node = nvm.read_u64(atlas::skiplist::next_addr(node, 0));
    }
    r
}

/// Walk the recovered P-ART: every leaf reachable through published
/// child pointers must be fully persisted (key ≠ 0, first value word ==
/// key.rotate_left(1)).
pub fn verify_art(nvm: &NvmImage) -> RecoveryReport {
    let mut r = RecoveryReport::default();
    let root = nvm.read_u64(art::ART_ROOT);
    if root == 0 {
        return r;
    }
    fn walk(nvm: &NvmImage, node: u64, level: u32, r: &mut RecoveryReport) {
        if level > art::LEVELS {
            r.violate("p-art: tree deeper than LEVELS".into());
            return;
        }
        for byte in 0..256u64 {
            let child = nvm.read_u64(art::slot(node, byte));
            if child == 0 {
                continue;
            }
            if child & art::LEAF_TAG != 0 {
                let leaf = child & !art::LEAF_TAG;
                let key = nvm.read_u64(leaf);
                if key == 0 {
                    r.violate(format!("p-art: published leaf {leaf:#x} not persisted"));
                    continue;
                }
                let v0 = nvm.read_u64(leaf + 64);
                if v0 != key.rotate_left(1) {
                    r.violate(format!("p-art: leaf {leaf:#x} key {key} torn value"));
                } else {
                    r.live_entries += 1;
                }
            } else {
                walk(nvm, child, level + 1, r);
            }
        }
    }
    walk(nvm, root, 0, &mut r);
    r
}

/// Atlas heap recovery: replay the per-thread undo logs (roll back
/// failure-atomic sections that never committed), then verify the binary
/// min-heap property on the recovered array — exactly what Atlas's own
/// recovery pass establishes from its logs.
///
/// A record is *uncommitted* when its tag exceeds the thread's persisted
/// commit marker; rollback applies the logged old values newest-first.
/// Since sections run under one global lock, at most one thread can have
/// an open (uncommitted) section at the crash.
pub fn recover_atlas_heap(nvm: &NvmImage) -> RecoveryReport {
    use crate::atlas::heap::{elem, HEAP_COUNT, LOG_REGION};
    use crate::atlas::UndoLog;

    let mut r = RecoveryReport::default();

    // Phase 1: roll back uncommitted sections from every thread's log.
    // Collect (tag, addr, old) for records beyond the commit marker.
    let mut pending: Vec<(u64, u64, u64)> = Vec::new();
    for t in 0..8u64 {
        let base = LOG_REGION + t * 0x10_0000;
        let slots = 1024u64;
        let marker = nvm.read_u64(UndoLog::marker_addr(base, slots));
        for s in 0..slots {
            let rec = base + s * 64;
            let tag = nvm.read_u64(rec + 16);
            if tag > marker {
                pending.push((tag, nvm.read_u64(rec), nvm.read_u64(rec + 8)));
            }
        }
    }
    // Unwind newest-first so, when a section logged an address several
    // times, the *oldest* logged value (the pre-section state) is the
    // one that sticks.
    pending.sort_by_key(|e| std::cmp::Reverse(e.0));
    let mut overlay: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for &(_, addr, old) in &pending {
        overlay.insert(addr, old);
    }
    let read = |addr: u64| -> u64 {
        overlay
            .get(&addr)
            .copied()
            .unwrap_or_else(|| nvm.read_u64(addr))
    };
    r.torn_entries = pending.len() as u64;

    // Phase 2: the heap property must hold on the recovered view.
    let n = read(HEAP_COUNT);
    if n > (1 << 14) {
        r.violate(format!("heap: implausible recovered count {n}"));
        return r;
    }
    for i in 1..n {
        let parent = (i - 1) / 2;
        let pv = read(elem(parent));
        let cv = read(elem(i));
        if pv > cv {
            r.violate(format!(
                "heap: property violated after rollback at index {i} ({pv} > {cv})"
            ));
        }
    }
    r.live_entries = n;
    r
}

/// Dispatch a verifier by workload kind (only structure workloads have
/// one).
pub fn verifier_for(kind: crate::WorkloadKind) -> Option<fn(&NvmImage) -> RecoveryReport> {
    use crate::WorkloadKind::*;
    Some(match kind {
        Cceh | DashEh => verify_exthash,
        PClht => verify_clht,
        DashLh => verify_levelhash,
        Memcached => verify_memcached,
        FastFair => verify_fastfair,
        Queue => verify_queue,
        Skiplist => verify_skiplist,
        Heap => recover_atlas_heap,
        PArt => verify_art,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{make_workload, WorkloadKind, WorkloadParams};
    use asap_core::{Flavor, ModelKind, SimBuilder};
    use asap_sim_core::{Cycle, SimConfig};

    fn crash_and_verify(kind: WorkloadKind, at: u64, seed: u64) -> RecoveryReport {
        let params = WorkloadParams {
            threads: 3,
            ops_per_thread: 70,
            seed,
            key_space: 128,
            ..Default::default()
        };
        let programs = make_workload(kind, &params);
        let mut cfg = SimConfig::paper();
        cfg.num_cores = 3;
        let mut sim = SimBuilder::new(cfg, ModelKind::Asap, Flavor::Release)
            .programs(programs)
            .with_journal()
            .build();
        let oracle = sim.crash_at(Cycle(at)).expect("journal enabled");
        assert!(oracle.is_consistent(), "{kind}: {:?}", oracle.violations);
        let verify = verifier_for(kind).expect("structure workload");
        verify(sim.nvm())
    }

    #[test]
    fn structures_are_recoverable_after_midrun_crashes() {
        for kind in [
            WorkloadKind::Cceh,
            WorkloadKind::PClht,
            WorkloadKind::DashLh,
            WorkloadKind::Memcached,
            WorkloadKind::FastFair,
            WorkloadKind::Queue,
            WorkloadKind::Skiplist,
            WorkloadKind::PArt,
            WorkloadKind::Heap,
        ] {
            for at in [15_000u64, 80_000] {
                let r = crash_and_verify(kind, at, 3);
                assert!(r.is_recoverable(), "{kind} crash@{at}: {:?}", r.violations);
            }
        }
    }

    #[test]
    fn completed_runs_have_live_entries() {
        // Crash long after completion: plenty of live data, zero torn.
        for kind in [
            WorkloadKind::Cceh,
            WorkloadKind::PClht,
            WorkloadKind::Skiplist,
        ] {
            let r = crash_and_verify(kind, 30_000_000, 5);
            assert!(r.is_recoverable(), "{kind}: {:?}", r.violations);
            assert!(r.live_entries > 0, "{kind}: nothing persisted");
            assert_eq!(r.torn_entries, 0, "{kind}: torn entries after clean finish");
        }
    }

    #[test]
    fn early_crashes_may_tear_but_never_corrupt() {
        for kind in [
            WorkloadKind::Cceh,
            WorkloadKind::Memcached,
            WorkloadKind::PArt,
        ] {
            for at in [2_000u64, 5_000, 9_000] {
                let r = crash_and_verify(kind, at, 11);
                assert!(r.is_recoverable(), "{kind} crash@{at}: {:?}", r.violations);
            }
        }
    }
}
