//! Atlas skip list: a persistent skip list behind a global lock.
//!
//! Insert finds predecessors at every level, then logs-and-links the new
//! node bottom-up; delete unlinks top-down. Towers are capped at
//! [`MAX_LEVEL`]. Longer traversals and multi-level link updates make
//! this the paper's *worst-scaling* workload (Figure 10 uses it as the
//! low end).

use super::UndoLog;
use crate::common::{
    init_once, Arena, LockPhase, LockStep, SpinLock, WorkloadParams, GLOBALS_BASE, STATIC_BASE,
};
use asap_core::{BurstCtx, BurstStatus, ThreadProgram};
use asap_sim_core::{DetRng, ThreadId};

/// Maximum tower height.
pub const MAX_LEVEL: u64 = 4;

pub(crate) const SL_HEAD: u64 = GLOBALS_BASE + 0x700;
const SL_LOCK: u64 = GLOBALS_BASE + 0x740; // own line: ticket + serving words
const SL_INIT_FLAG: u64 = GLOBALS_BASE + 0x710;
const LOG_REGION: u64 = STATIC_BASE + 0x0600_0000;

// Node: [key, value, next[0..MAX_LEVEL]] — fits one line (6*8 = 48B).
const NODE_BYTES: u64 = 64;

pub(crate) fn next_addr(node: u64, level: u64) -> u64 {
    node + 16 + level * 8
}

/// Atlas skip-list workload: insert/delete/search mix under one lock.
#[derive(Clone)]
pub struct AtlasSkiplist {
    #[allow(dead_code)]
    tid: usize,
    rng: DetRng,
    arena: Arena,
    ops_left: u64,
    params: WorkloadParams,
    log: UndoLog,
    phase: LockPhase,
    pending: Option<u8>, // 0 = insert, 1 = delete, 2 = search
}

impl AtlasSkiplist {
    /// Build the program for one thread.
    pub fn new(thread: usize, params: &WorkloadParams) -> AtlasSkiplist {
        AtlasSkiplist {
            tid: thread,
            rng: params.rng_for(thread),
            arena: Arena::for_thread(thread),
            ops_left: params.ops_per_thread,
            params: params.clone(),
            log: UndoLog::new(LOG_REGION + thread as u64 * 0x10_0000, 1024),
            phase: LockPhase::start(),
            pending: None,
        }
    }

    fn setup(ctx: &mut BurstCtx<'_>, arena: &mut Arena) {
        let head = arena.alloc(NODE_BYTES);
        ctx.poke_durable_u64(head, 0); // key 0 = -inf sentinel
        ctx.poke_durable_u64(SL_HEAD, head);
    }

    fn random_height(&mut self) -> u64 {
        let mut h = 1;
        while h < MAX_LEVEL && self.rng.chance(0.5) {
            h += 1;
        }
        h
    }

    /// Find per-level predecessors of `key` (timed loads).
    fn find_preds(&self, ctx: &mut BurstCtx<'_>, key: u64) -> [u64; MAX_LEVEL as usize] {
        let head = ctx.load_u64(SL_HEAD);
        let mut preds = [head; MAX_LEVEL as usize];
        let mut node = head;
        for level in (0..MAX_LEVEL).rev() {
            loop {
                let next = ctx.load_u64(next_addr(node, level));
                if next == 0 {
                    break;
                }
                let nk = ctx.load_u64(next);
                if nk >= key {
                    break;
                }
                node = next;
            }
            preds[level as usize] = node;
        }
        preds
    }

    fn insert(&mut self, ctx: &mut BurstCtx<'_>, key: u64) {
        let preds = self.find_preds(ctx, key);
        let after = ctx.load_u64(next_addr(preds[0], 0));
        if after != 0 && ctx.load_u64(after) == key {
            // Present: update value in place (logged).
            self.log.log_and_store(ctx, after + 8, key ^ 0xfeed);
            self.log.commit_section(ctx);
            return;
        }
        let h = self.random_height();
        let node = self.arena.alloc(NODE_BYTES);
        ctx.store_u64(node, key);
        ctx.store_u64(node + 8, key ^ 0xfeed);
        for level in 0..h {
            let succ = ctx.load_u64(next_addr(preds[level as usize], level));
            ctx.store_u64(next_addr(node, level), succ);
        }
        ctx.ofence(); // node durable before linking
        for level in 0..h {
            self.log
                .log_and_store(ctx, next_addr(preds[level as usize], level), node);
        }
        self.log.commit_section(ctx);
    }

    fn delete(&mut self, ctx: &mut BurstCtx<'_>, key: u64) {
        let preds = self.find_preds(ctx, key);
        let victim = ctx.load_u64(next_addr(preds[0], 0));
        if victim == 0 || ctx.load_u64(victim) != key {
            return;
        }
        for level in (0..MAX_LEVEL).rev() {
            let p = preds[level as usize];
            if ctx.load_u64(next_addr(p, level)) == victim {
                let succ = ctx.load_u64(next_addr(victim, level));
                self.log.log_and_store(ctx, next_addr(p, level), succ);
            }
        }
        self.log.commit_section(ctx);
    }

    fn search(&self, ctx: &mut BurstCtx<'_>, key: u64) {
        let preds = self.find_preds(ctx, key);
        let node = ctx.load_u64(next_addr(preds[0], 0));
        if node != 0 && ctx.load_u64(node) == key {
            ctx.load_u64(node + 8);
        }
    }
}

impl ThreadProgram for AtlasSkiplist {
    fn boxed_clone(&self) -> Option<Box<dyn ThreadProgram>> {
        Some(Box::new(self.clone()))
    }

    fn next_burst(&mut self, tid: ThreadId, ctx: &mut BurstCtx<'_>) -> BurstStatus {
        init_once(ctx, SL_INIT_FLAG, |c| Self::setup(c, &mut self.arena));
        if self.pending.is_none() {
            if self.ops_left == 0 {
                ctx.dfence();
                return BurstStatus::Finished;
            }
            ctx.compute(self.params.think_cycles);
            let r = self.rng.below(10);
            self.pending = Some(if r < 5 {
                0
            } else if r < 8 {
                1
            } else {
                2
            });
        }
        let lock = SpinLock::at(SL_LOCK);
        match self.phase.step(lock, ctx, tid, 50) {
            LockStep::EnterCritical => {
                let key = self.rng.below(self.params.key_space) + 1;
                match self.pending.expect("op pending") {
                    0 => self.insert(ctx, key),
                    1 => self.delete(ctx, key),
                    _ => self.search(ctx, key),
                }
            }
            LockStep::StillAcquiring => {}
            LockStep::Released => {
                ctx.dfence();
                ctx.op_completed();
                self.ops_left -= 1;
                self.pending = None;
            }
        }
        BurstStatus::Running
    }

    fn name(&self) -> &str {
        "skiplist"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_core::{Flavor, ModelKind, SimBuilder};
    use asap_sim_core::SimConfig;

    fn run(threads: usize, ops: u64) -> asap_core::Sim {
        let params = WorkloadParams {
            threads,
            ops_per_thread: ops,
            seed: 71,
            key_space: 300,
            ..Default::default()
        };
        let programs: Vec<Box<dyn ThreadProgram>> = (0..threads)
            .map(|t| -> Box<dyn ThreadProgram> { Box::new(AtlasSkiplist::new(t, &params)) })
            .collect();
        let mut sim = SimBuilder::new(SimConfig::paper(), ModelKind::Asap, Flavor::Release)
            .programs(programs)
            .build();
        let out = sim.run_to_completion();
        assert!(out.all_done);
        sim
    }

    #[test]
    fn skiplist_completes() {
        let sim = run(1, 40);
        assert_eq!(sim.stats().ops_completed, 40);
    }

    #[test]
    fn skiplist_bottom_level_sorted() {
        let sim = run(2, 40);
        let pm = sim.pm();
        let head = pm.read_u64(SL_HEAD);
        let mut node = pm.read_u64(next_addr(head, 0));
        let mut last = 0;
        let mut count = 0;
        while node != 0 && count < 10_000 {
            let k = pm.read_u64(node);
            assert!(k > last, "skiplist keys out of order: {k} after {last}");
            last = k;
            node = pm.read_u64(next_addr(node, 0));
            count += 1;
        }
        assert!(count < 10_000, "cycle in skiplist");
        assert!(count > 0, "skiplist empty after inserts");
    }

    #[test]
    fn skiplist_multithreaded() {
        let sim = run(4, 15);
        assert_eq!(sim.stats().ops_completed, 60);
    }
}
