//! Atlas queue: a persistent linked FIFO queue behind a global lock.
//!
//! Enqueue allocates a node, persists it, then logs-and-links the tail;
//! dequeue logs-and-advances the head. Small critical sections with a
//! single lock make this workload a dense stream of tiny epochs and
//! frequent lock hand-offs — the paper shows HOPS_EP dropping below
//! baseline on exactly this shape.

use super::UndoLog;
use crate::common::{
    init_once, Arena, LockPhase, LockStep, SpinLock, WorkloadParams, GLOBALS_BASE, STATIC_BASE,
};
use asap_core::{BurstCtx, BurstStatus, ThreadProgram};
use asap_sim_core::{DetRng, ThreadId};

pub(crate) const Q_HEAD: u64 = GLOBALS_BASE + 0x600;
const Q_TAIL: u64 = GLOBALS_BASE + 0x608;
const Q_LOCK: u64 = GLOBALS_BASE + 0x640; // own line: ticket + serving words
const Q_INIT_FLAG: u64 = GLOBALS_BASE + 0x618;
const LOG_REGION: u64 = STATIC_BASE + 0x0500_0000;

// Node: [value, next] in one line.
const NODE_BYTES: u64 = 64;

/// Atlas queue workload: 50/50 enqueue/dequeue under one lock.
#[derive(Clone)]
pub struct AtlasQueue {
    #[allow(dead_code)]
    tid: usize,
    rng: DetRng,
    arena: Arena,
    ops_left: u64,
    params: WorkloadParams,
    log: UndoLog,
    phase: LockPhase,
    pending: Option<bool>,
}

impl AtlasQueue {
    /// Build the program for one thread.
    pub fn new(thread: usize, params: &WorkloadParams) -> AtlasQueue {
        AtlasQueue {
            tid: thread,
            rng: params.rng_for(thread),
            arena: Arena::for_thread(thread),
            ops_left: params.ops_per_thread,
            params: params.clone(),
            log: UndoLog::new(LOG_REGION + thread as u64 * 0x10_0000, 1024),
            phase: LockPhase::start(),
            pending: None,
        }
    }

    fn setup(ctx: &mut BurstCtx<'_>, arena: &mut Arena) {
        // Sentinel node so head/tail are never null.
        let s = arena.alloc(NODE_BYTES);
        ctx.poke_durable_u64(Q_HEAD, s);
        ctx.poke_durable_u64(Q_TAIL, s);
    }

    fn enqueue(&mut self, ctx: &mut BurstCtx<'_>, v: u64) {
        let node = self.arena.alloc(NODE_BYTES);
        // Persist the node before linking it (out-of-place init needs no
        // undo record).
        ctx.store_u64(node, v);
        ctx.store_u64(node + 8, 0);
        ctx.ofence();
        let tail = ctx.load_u64(Q_TAIL);
        self.log.log_and_store(ctx, tail + 8, node);
        self.log.log_and_store(ctx, Q_TAIL, node);
        self.log.commit_section(ctx);
    }

    fn dequeue(&mut self, ctx: &mut BurstCtx<'_>) {
        let head = ctx.load_u64(Q_HEAD);
        let next = ctx.load_u64(head + 8);
        if next == 0 {
            return; // empty
        }
        ctx.load_u64(next); // read the value out
        self.log.log_and_store(ctx, Q_HEAD, next);
        self.log.commit_section(ctx);
        // The old sentinel becomes garbage (no free: arenas are
        // per-thread and nodes may cross threads).
    }
}

impl ThreadProgram for AtlasQueue {
    fn boxed_clone(&self) -> Option<Box<dyn ThreadProgram>> {
        Some(Box::new(self.clone()))
    }

    fn next_burst(&mut self, tid: ThreadId, ctx: &mut BurstCtx<'_>) -> BurstStatus {
        init_once(ctx, Q_INIT_FLAG, |c| Self::setup(c, &mut self.arena));
        if self.pending.is_none() {
            if self.ops_left == 0 {
                ctx.dfence();
                return BurstStatus::Finished;
            }
            ctx.compute(self.params.think_cycles);
            self.pending = Some(self.rng.chance(0.5));
        }
        let lock = SpinLock::at(Q_LOCK);
        match self.phase.step(lock, ctx, tid, 40) {
            LockStep::EnterCritical => {
                let enq = self.pending.expect("op pending");
                if enq {
                    let v = self.rng.below(self.params.key_space) + 1;
                    self.enqueue(ctx, v);
                } else {
                    self.dequeue(ctx);
                }
            }
            LockStep::StillAcquiring => {}
            LockStep::Released => {
                ctx.dfence();
                ctx.op_completed();
                self.ops_left -= 1;
                self.pending = None;
            }
        }
        BurstStatus::Running
    }

    fn name(&self) -> &str {
        "queue"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_core::{Flavor, ModelKind, SimBuilder};
    use asap_sim_core::SimConfig;

    fn run(threads: usize, ops: u64) -> asap_core::Sim {
        let params = WorkloadParams {
            threads,
            ops_per_thread: ops,
            seed: 61,
            ..Default::default()
        };
        let programs: Vec<Box<dyn ThreadProgram>> = (0..threads)
            .map(|t| -> Box<dyn ThreadProgram> { Box::new(AtlasQueue::new(t, &params)) })
            .collect();
        let mut sim = SimBuilder::new(SimConfig::paper(), ModelKind::Asap, Flavor::Release)
            .programs(programs)
            .build();
        let out = sim.run_to_completion();
        assert!(out.all_done);
        sim
    }

    #[test]
    fn queue_completes() {
        let sim = run(1, 40);
        assert_eq!(sim.stats().ops_completed, 40);
    }

    #[test]
    fn queue_is_walkable_and_acyclic() {
        let sim = run(2, 30);
        let pm = sim.pm();
        let mut node = pm.read_u64(Q_HEAD);
        let mut hops = 0;
        while node != 0 && hops < 1000 {
            node = pm.read_u64(node + 8);
            hops += 1;
        }
        assert!(hops < 1000, "queue has a cycle");
    }

    #[test]
    fn queue_multithreaded_hand_offs() {
        let sim = run(4, 20);
        assert_eq!(sim.stats().ops_completed, 80);
        assert!(
            sim.stats().inter_t_epoch_conflict > 0,
            "lock hand-offs expected"
        );
    }
}
