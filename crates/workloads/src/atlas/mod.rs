//! Atlas-style workloads (OOPSLA'14): heap, queue and skip list.
//!
//! Atlas gives lock-based code failure atomicity: each critical section
//! becomes a failure-atomic section (FASE). Before every store inside a
//! FASE, Atlas appends an *undo record* (address, old value) to a
//! per-thread log and orders it before the data store; closing the
//! section writes a commit marker that logically truncates the log.
//!
//! [`UndoLog`] reproduces that write/fence pattern; the three structures
//! use a global structure lock (as the paper's hand-written Atlas
//! data-structure benchmarks do), so their persist streams are dominated
//! by log append + in-place update pairs inside lock hand-offs.

pub mod heap;
pub mod queue;
pub mod skiplist;

use asap_core::BurstCtx;

/// Per-thread Atlas undo log.
///
/// Each record is one cache line: `[addr, old_value, tag]`, where `tag`
/// is the record's monotonically increasing position — recovery scans
/// use it to find records beyond the last commit marker even though the
/// log wraps (real Atlas prunes at consistent points).
#[derive(Debug, Clone)]
pub struct UndoLog {
    base: u64,
    slots: u64,
    pos: u64,
}

impl UndoLog {
    /// A log of `slots` one-line records at `base`.
    pub fn new(base: u64, slots: u64) -> UndoLog {
        UndoLog {
            base,
            slots,
            pos: 0,
        }
    }

    /// Base address of the log region.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Record capacity.
    pub fn slots(&self) -> u64 {
        self.slots
    }

    /// Address of the record at position `pos` (wrapping).
    pub fn record_addr(base: u64, slots: u64, pos: u64) -> u64 {
        base + (pos % slots) * 64
    }

    /// Address of the commit marker.
    pub fn marker_addr(base: u64, slots: u64) -> u64 {
        base + slots * 64
    }

    /// Atlas store: append the undo record, `ofence`, then store the new
    /// value (log-before-data ordering). The record's tag is `pos + 1`
    /// so an all-zero (never-written) slot is distinguishable.
    pub fn log_and_store(&mut self, ctx: &mut BurstCtx<'_>, addr: u64, new: u64) {
        let old = ctx.load_u64(addr);
        let rec = Self::record_addr(self.base, self.slots, self.pos);
        self.pos += 1;
        ctx.store_u64(rec, addr);
        ctx.store_u64(rec + 8, old);
        ctx.store_u64(rec + 16, self.pos); // tag = 1-based position
        ctx.ofence();
        ctx.store_u64(addr, new);
    }

    /// Close the failure-atomic section: order data writes, then persist
    /// the commit marker (the 1-based position of the last committed
    /// record).
    pub fn commit_section(&mut self, ctx: &mut BurstCtx<'_>) {
        ctx.ofence();
        ctx.store_u64(Self::marker_addr(self.base, self.slots), self.pos);
        ctx.ofence();
    }

    /// Records appended so far.
    pub fn records(&self) -> u64 {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_pm_mem::{PmSpace, WriteJournal};

    #[test]
    fn undo_log_orders_log_before_data() {
        let mut pm = PmSpace::new();
        let mut j = WriteJournal::enabled();
        let mut ctx = BurstCtx::new(&mut pm, &mut j);
        pm_init(&mut ctx);
        let mut log = UndoLog::new(0x9000_0000, 16);
        log.log_and_store(&mut ctx, 0x8000_0000, 42);
        log.commit_section(&mut ctx);
        assert_eq!(log.records(), 1);
        let (ops, _, _) = ctx.into_parts();
        // Order: load(old), store(rec), store(rec+8), store(tag), OFence,
        // store(data), ...
        use asap_core::MemOp;
        let stores: Vec<usize> = ops
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_store())
            .map(|(i, _)| i)
            .collect();
        let fence = ops.iter().position(|o| matches!(o, MemOp::OFence)).unwrap();
        assert!(
            stores[0] < fence && stores[1] < fence && stores[2] < fence,
            "log before fence"
        );
        assert!(stores[3] > fence, "data after fence");
        // Functional state updated.
        assert_eq!(pm.read_u64(0x8000_0000), 42);
        assert_eq!(pm.read_u64(0x9000_0000), 0x8000_0000);
    }

    fn pm_init(ctx: &mut BurstCtx<'_>) {
        ctx.poke_u64(0x8000_0000, 7); // pre-existing value to be logged
    }

    #[test]
    fn undo_log_wraps() {
        let mut pm = PmSpace::new();
        let mut j = WriteJournal::disabled();
        let mut ctx = BurstCtx::new(&mut pm, &mut j);
        let mut log = UndoLog::new(0x9100_0000, 2);
        for i in 0..5 {
            log.log_and_store(&mut ctx, 0x8200_0000 + i * 8, i);
        }
        assert_eq!(log.records(), 5);
    }
}
