//! Atlas heap: a persistent array binary min-heap behind a global lock.
//!
//! Insert sift-up and pop-min sift-down both log-and-store every element
//! move, giving the long-epoch, low-cross-dependency profile of the
//! paper's "heap" workload.

use super::UndoLog;
use crate::common::{
    init_once, LockPhase, LockStep, SpinLock, WorkloadParams, GLOBALS_BASE, STATIC_BASE,
};
use asap_core::{BurstCtx, BurstStatus, ThreadProgram};
use asap_sim_core::{DetRng, ThreadId};

pub(crate) const HEAP_REGION: u64 = STATIC_BASE + 0x0300_0000;
pub(crate) const HEAP_COUNT: u64 = GLOBALS_BASE + 0x500;
const HEAP_LOCK: u64 = GLOBALS_BASE + 0x540; // own line: ticket + serving words
const HEAP_INIT_FLAG: u64 = GLOBALS_BASE + 0x510;
pub(crate) const LOG_REGION: u64 = STATIC_BASE + 0x0400_0000;
const MAX_ELEMS: u64 = 1 << 14;

pub(crate) fn elem(i: u64) -> u64 {
    // One element per line to keep sift writes line-distinct.
    HEAP_REGION + i * 64
}

/// Atlas heap workload: alternating insert / pop-min under one lock.
#[derive(Clone)]
pub struct AtlasHeap {
    #[allow(dead_code)]
    tid: usize,
    rng: DetRng,
    ops_left: u64,
    params: WorkloadParams,
    log: UndoLog,
    phase: LockPhase,
    pending: Option<bool>, // Some(is_insert) while the lock protocol runs
}

impl AtlasHeap {
    /// Build the program for one thread.
    pub fn new(thread: usize, params: &WorkloadParams) -> AtlasHeap {
        AtlasHeap {
            tid: thread,
            rng: params.rng_for(thread),
            ops_left: params.ops_per_thread,
            params: params.clone(),
            log: UndoLog::new(LOG_REGION + thread as u64 * 0x10_0000, 1024),
            phase: LockPhase::start(),
            pending: None,
        }
    }

    fn insert(&mut self, ctx: &mut BurstCtx<'_>, v: u64) {
        let n = ctx.load_u64(HEAP_COUNT);
        if n >= MAX_ELEMS {
            return;
        }
        self.log.log_and_store(ctx, elem(n), v);
        self.log.log_and_store(ctx, HEAP_COUNT, n + 1);
        // Sift up.
        let mut i = n;
        while i > 0 {
            let parent = (i - 1) / 2;
            let pv = ctx.load_u64(elem(parent));
            let cv = ctx.load_u64(elem(i));
            if pv <= cv {
                break;
            }
            self.log.log_and_store(ctx, elem(parent), cv);
            self.log.log_and_store(ctx, elem(i), pv);
            i = parent;
        }
        self.log.commit_section(ctx);
    }

    fn pop_min(&mut self, ctx: &mut BurstCtx<'_>) {
        let n = ctx.load_u64(HEAP_COUNT);
        if n == 0 {
            return;
        }
        let last = ctx.load_u64(elem(n - 1));
        self.log.log_and_store(ctx, elem(0), last);
        self.log.log_and_store(ctx, HEAP_COUNT, n - 1);
        let n = n - 1;
        // Sift down.
        let mut i = 0;
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            if l >= n {
                break;
            }
            let lv = ctx.load_u64(elem(l));
            let child = if r < n && ctx.load_u64(elem(r)) < lv {
                r
            } else {
                l
            };
            let cv = ctx.load_u64(elem(child));
            let iv = ctx.load_u64(elem(i));
            if iv <= cv {
                break;
            }
            self.log.log_and_store(ctx, elem(i), cv);
            self.log.log_and_store(ctx, elem(child), iv);
            i = child;
        }
        self.log.commit_section(ctx);
    }
}

impl ThreadProgram for AtlasHeap {
    fn boxed_clone(&self) -> Option<Box<dyn ThreadProgram>> {
        Some(Box::new(self.clone()))
    }

    fn next_burst(&mut self, tid: ThreadId, ctx: &mut BurstCtx<'_>) -> BurstStatus {
        init_once(ctx, HEAP_INIT_FLAG, |_| {});
        if self.pending.is_none() {
            if self.ops_left == 0 {
                ctx.dfence();
                return BurstStatus::Finished;
            }
            ctx.compute(self.params.think_cycles);
            self.pending = Some(self.rng.chance(0.6));
        }
        let lock = SpinLock::at(HEAP_LOCK);
        match self.phase.step(lock, ctx, tid, 50) {
            LockStep::EnterCritical => {
                let insert = self.pending.expect("op pending");
                if insert {
                    let v = self.rng.below(self.params.key_space) + 1;
                    self.insert(ctx, v);
                } else {
                    self.pop_min(ctx);
                }
            }
            LockStep::StillAcquiring => {}
            LockStep::Released => {
                ctx.dfence();
                ctx.op_completed();
                self.ops_left -= 1;
                self.pending = None;
            }
        }
        BurstStatus::Running
    }

    fn name(&self) -> &str {
        "heap"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_core::{Flavor, ModelKind, SimBuilder};
    use asap_sim_core::SimConfig;

    fn run(threads: usize, ops: u64) -> asap_core::Sim {
        let params = WorkloadParams {
            threads,
            ops_per_thread: ops,
            seed: 51,
            key_space: 1000,
            ..Default::default()
        };
        let programs: Vec<Box<dyn ThreadProgram>> = (0..threads)
            .map(|t| -> Box<dyn ThreadProgram> { Box::new(AtlasHeap::new(t, &params)) })
            .collect();
        let mut sim = SimBuilder::new(SimConfig::paper(), ModelKind::Asap, Flavor::Release)
            .programs(programs)
            .build();
        let out = sim.run_to_completion();
        assert!(out.all_done);
        sim
    }

    #[test]
    fn heap_completes() {
        let sim = run(1, 40);
        assert_eq!(sim.stats().ops_completed, 40);
    }

    #[test]
    fn heap_property_holds_functionally() {
        let sim = run(2, 30);
        let pm = sim.pm();
        let n = pm.read_u64(HEAP_COUNT);
        for i in 1..n {
            let parent = (i - 1) / 2;
            assert!(
                pm.read_u64(elem(parent)) <= pm.read_u64(elem(i)),
                "heap property violated at {i}"
            );
        }
    }

    #[test]
    fn heap_multithreaded_serializes() {
        let sim = run(4, 15);
        assert_eq!(sim.stats().ops_completed, 60);
    }
}
