//! Dash-LH: level hashing on persistent memory (Dash, VLDB'20 /
//! Level Hashing, OSDI'18).
//!
//! Two bucket arrays: a **top** level of `TOP_BUCKETS` and a **bottom**
//! level half that size; every key has two candidate top buckets (two
//! hash functions) and one shared bottom bucket. Inserts take the target
//! bucket's lock, write a fingerprint and the pair, `ofence`, release.
//! When all three candidates are full the pair goes to a lock-protected
//! **stash** region — the standard overflow path.

use crate::common::{
    fnv1a, init_once, lock_region, Arena, KeySampler, LockPhase, LockStep, SpinLock,
    WorkloadParams, GLOBALS_BASE, LOCK_STRIPES, STATIC_BASE,
};
use asap_core::{BurstCtx, BurstStatus, ThreadProgram};
use asap_sim_core::{DetRng, ThreadId};

/// Buckets in the top level.
pub const TOP_BUCKETS: u64 = 1 << 9;
pub(crate) const BOTTOM_BUCKETS: u64 = TOP_BUCKETS / 2;
pub(crate) const PAIRS: u64 = 3;
pub(crate) const STASH_SLOTS: u64 = 256;

const TOP_REGION: u64 = STATIC_BASE + 0x0200_0000;
const BOTTOM_REGION: u64 = STATIC_BASE + 0x0210_0000;
pub(crate) const STASH_REGION: u64 = STATIC_BASE + 0x0220_0000;
const STASH_LOCK: u64 = GLOBALS_BASE + 0x440; // own line: ticket + serving words
const STASH_COUNT: u64 = GLOBALS_BASE + 0x408;
const LH_INIT_FLAG: u64 = GLOBALS_BASE + 0x410;

fn h2(key: u64) -> u64 {
    fnv1a(key ^ 0x9e37_79b9)
}

// Bucket line: [k0 v0 | k1 v1 | k2 v2 | fp]; bucket locks live in a
// striped lock table.
pub(crate) fn top_bucket(i: u64) -> u64 {
    TOP_REGION + (i % TOP_BUCKETS) * 64
}

pub(crate) fn bottom_bucket(i: u64) -> u64 {
    BOTTOM_REGION + (i % BOTTOM_BUCKETS) * 64
}

pub(crate) fn pair_addr(bucket: u64, i: u64) -> u64 {
    bucket + i * 16
}

#[derive(Clone)]
enum Phase {
    Idle,
    /// Holding/awaiting one candidate bucket's lock.
    Bucket {
        key: u64,
        bucket: u64,
        alt: u8,
        lock: SpinLock,
        phase: LockPhase,
        placed: bool,
    },
    /// Overflow: stash append under the stash lock.
    Stash {
        key: u64,
        phase: LockPhase,
    },
}

/// Dash-LH insert-heavy workload.
#[derive(Clone)]
pub struct LevelHash {
    #[allow(dead_code)]
    tid: usize,
    rng: DetRng,
    sampler: KeySampler,
    #[allow(dead_code)]
    arena: Arena,
    ops_left: u64,
    params: WorkloadParams,
    phase: Phase,
}

impl LevelHash {
    /// Build the program for one thread.
    pub fn new(thread: usize, params: &WorkloadParams) -> LevelHash {
        LevelHash {
            tid: thread,
            rng: params.rng_for(thread),
            sampler: params.key_sampler(),
            arena: Arena::for_thread(thread),
            ops_left: params.ops_per_thread,
            params: params.clone(),
            phase: Phase::Idle,
        }
    }

    fn candidate(key: u64, alt: u8) -> u64 {
        match alt {
            0 => top_bucket(fnv1a(key)),
            1 => top_bucket(h2(key)),
            _ => bottom_bucket(fnv1a(key)),
        }
    }

    /// Try to place the pair in the locked bucket. Returns success.
    fn locked_insert(&mut self, ctx: &mut BurstCtx<'_>, bucket: u64, key: u64) -> bool {
        let val = key ^ 0x1e4e;
        for i in 0..PAIRS {
            let k = ctx.load_u64(pair_addr(bucket, i));
            if k == key || k == 0 {
                // Fingerprint byte first (Dash), then value, fence, key.
                ctx.store_u64(bucket + 48, fnv1a(key) & 0xff);
                ctx.store_u64(pair_addr(bucket, i) + 8, val);
                ctx.ofence();
                ctx.store_u64(pair_addr(bucket, i), key);
                ctx.ofence();
                return true;
            }
        }
        false
    }

    fn lookup(&mut self, ctx: &mut BurstCtx<'_>, key: u64) {
        for alt in 0..3u8 {
            let b = Self::candidate(key, alt);
            for i in 0..PAIRS {
                if ctx.load_u64(pair_addr(b, i)) == key {
                    ctx.load_u64(pair_addr(b, i) + 8);
                    return;
                }
            }
        }
    }

    fn finish_op(&mut self, ctx: &mut BurstCtx<'_>) {
        ctx.dfence();
        ctx.op_completed();
        self.ops_left -= 1;
    }
}

impl ThreadProgram for LevelHash {
    fn boxed_clone(&self) -> Option<Box<dyn ThreadProgram>> {
        Some(Box::new(self.clone()))
    }

    fn next_burst(&mut self, tid: ThreadId, ctx: &mut BurstCtx<'_>) -> BurstStatus {
        init_once(ctx, LH_INIT_FLAG, |_| {});

        match std::mem::replace(&mut self.phase, Phase::Idle) {
            Phase::Idle => {}
            Phase::Bucket {
                key,
                bucket,
                alt,
                lock,
                mut phase,
                mut placed,
            } => {
                match phase.step(lock, ctx, tid, 30) {
                    LockStep::EnterCritical => {
                        placed = self.locked_insert(ctx, bucket, key);
                        self.phase = Phase::Bucket {
                            key,
                            bucket,
                            alt,
                            lock,
                            phase,
                            placed,
                        };
                    }
                    LockStep::StillAcquiring => {
                        self.phase = Phase::Bucket {
                            key,
                            bucket,
                            alt,
                            lock,
                            phase,
                            placed,
                        };
                    }
                    LockStep::Released => {
                        if placed {
                            self.finish_op(ctx);
                        } else if alt < 2 {
                            // Try the next candidate bucket.
                            let nb = Self::candidate(key, alt + 1);
                            self.phase = Phase::Bucket {
                                key,
                                bucket: nb,
                                alt: alt + 1,
                                lock: SpinLock::striped(lock_region(1), nb >> 6, LOCK_STRIPES),
                                phase: LockPhase::start(),
                                placed: false,
                            };
                        } else {
                            // All candidates full: stash.
                            self.phase = Phase::Stash {
                                key,
                                phase: LockPhase::start(),
                            };
                        }
                    }
                }
                return BurstStatus::Running;
            }
            Phase::Stash { key, mut phase } => {
                let lock = SpinLock::at(STASH_LOCK);
                match phase.step(lock, ctx, tid, 60) {
                    LockStep::EnterCritical => {
                        let n = ctx.load_u64(STASH_COUNT) % STASH_SLOTS;
                        let slot = STASH_REGION + n * 64;
                        ctx.store_u64(slot + 8, key ^ 0x1e4e);
                        ctx.ofence();
                        ctx.store_u64(slot, key);
                        ctx.ofence();
                        ctx.store_u64(STASH_COUNT, n + 1);
                        ctx.ofence();
                        self.phase = Phase::Stash { key, phase };
                    }
                    LockStep::StillAcquiring => {
                        self.phase = Phase::Stash { key, phase };
                    }
                    LockStep::Released => self.finish_op(ctx),
                }
                return BurstStatus::Running;
            }
        }

        if self.ops_left == 0 {
            ctx.dfence();
            return BurstStatus::Finished;
        }
        ctx.compute(self.params.think_cycles);
        let key = self.sampler.sample(&mut self.rng);
        if self.rng.chance(self.params.update_fraction) {
            let bucket = Self::candidate(key, 0);
            self.phase = Phase::Bucket {
                key,
                bucket,
                alt: 0,
                lock: SpinLock::striped(lock_region(1), bucket >> 6, LOCK_STRIPES),
                phase: LockPhase::start(),
                placed: false,
            };
        } else {
            self.lookup(ctx, key);
            ctx.op_completed();
            self.ops_left -= 1;
        }
        BurstStatus::Running
    }

    fn name(&self) -> &str {
        "dash-lh"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_core::{Flavor, ModelKind, SimBuilder};
    use asap_sim_core::SimConfig;

    fn run(threads: usize, ops: u64, key_space: u64) -> asap_core::Sim {
        let params = WorkloadParams {
            threads,
            ops_per_thread: ops,
            seed: 41,
            key_space,
            ..Default::default()
        };
        let programs: Vec<Box<dyn ThreadProgram>> = (0..threads)
            .map(|t| -> Box<dyn ThreadProgram> { Box::new(LevelHash::new(t, &params)) })
            .collect();
        let mut sim = SimBuilder::new(SimConfig::paper(), ModelKind::Asap, Flavor::Release)
            .programs(programs)
            .build();
        let out = sim.run_to_completion();
        assert!(out.all_done);
        sim
    }

    #[test]
    fn levelhash_completes() {
        let sim = run(1, 50, 128);
        assert_eq!(sim.stats().ops_completed, 50);
    }

    #[test]
    fn levelhash_stores_pairs() {
        let sim = run(1, 40, 64);
        let pm = sim.pm();
        let mut pairs = 0;
        for b in 0..TOP_BUCKETS {
            for i in 0..PAIRS {
                let k = pm.read_u64(pair_addr(top_bucket(b), i));
                if k != 0 {
                    assert_eq!(pm.read_u64(pair_addr(top_bucket(b), i) + 8), k ^ 0x1e4e);
                    pairs += 1;
                }
            }
        }
        assert!(pairs > 0);
    }

    #[test]
    fn levelhash_overflow_reaches_stash() {
        // Tiny key space (few distinct buckets) with many inserts: the
        // three candidate buckets saturate and the stash engages.
        let sim = run(2, 120, 8);
        let pm = sim.pm();
        // With only 8 distinct keys everything dedups in place, so force
        // check: either stash used or all keys placed in buckets.
        let stash_used = pm.read_u64(STASH_COUNT) > 0;
        let mut placed = 0;
        for b in 0..TOP_BUCKETS {
            for i in 0..PAIRS {
                if pm.read_u64(pair_addr(top_bucket(b), i)) != 0 {
                    placed += 1;
                }
            }
        }
        assert!(stash_used || placed > 0);
    }

    #[test]
    fn levelhash_multithreaded() {
        let sim = run(4, 25, 64);
        assert_eq!(sim.stats().ops_completed, 100);
    }
}
