//! P-CLHT: RECIPE's persistent cache-line hash table (SOSP'19).
//!
//! CLHT's defining property is that an operation touches exactly one
//! cache line in the common case: a bucket is one line holding an
//! embedded lock word plus three `(key, value)` pairs, chained via a next
//! pointer for overflow. Updates take the bucket lock
//! (acquire-annotated), write the pair, `ofence`, release; lookups are
//! lock-free single-line reads.

use crate::common::{
    fnv1a, init_once, lock_region, Arena, KeySampler, LockPhase, LockStep, SpinLock,
    WorkloadParams, GLOBALS_BASE, STATIC_BASE,
};
use asap_core::{BurstCtx, BurstStatus, ThreadProgram};
use asap_sim_core::{DetRng, ThreadId};

/// Number of top-level buckets (one line each).
pub const BUCKETS: u64 = 1 << 10;
pub(crate) const PAIRS: u64 = 3;
const BUCKET_REGION: u64 = STATIC_BASE + 0x0100_0000;
const CLHT_INIT_FLAG: u64 = GLOBALS_BASE + 0x300;

// Bucket line: [k0 v0 | k1 v1 | k2 v2 | next]; bucket locks live in a
// striped lock table (CLHT embeds them, but our synchronization tracking
// is line-granular, so the lock words get their own cells).
pub(crate) fn bucket_addr(b: u64) -> u64 {
    BUCKET_REGION + (b % BUCKETS) * 64
}

pub(crate) fn pair_addr(bucket: u64, i: u64) -> u64 {
    bucket + i * 16
}

pub(crate) fn next_addr(bucket: u64) -> u64 {
    bucket + 48
}

#[derive(Clone)]
enum Phase {
    Idle,
    Locked {
        key: u64,
        bucket: u64,
        lock: SpinLock,
        phase: LockPhase,
    },
}

/// P-CLHT update-heavy workload.
#[derive(Clone)]
pub struct PClht {
    #[allow(dead_code)]
    tid: usize,
    rng: DetRng,
    sampler: KeySampler,
    arena: Arena,
    ops_left: u64,
    params: WorkloadParams,
    phase: Phase,
}

impl PClht {
    /// Build the program for one thread.
    pub fn new(thread: usize, params: &WorkloadParams) -> PClht {
        PClht {
            tid: thread,
            rng: params.rng_for(thread),
            sampler: params.key_sampler(),
            arena: Arena::for_thread(thread),
            ops_left: params.ops_per_thread,
            params: params.clone(),
            phase: Phase::Idle,
        }
    }

    /// Insert under the held bucket lock: update in place, claim an empty
    /// pair, or append an overflow bucket.
    fn locked_insert(&mut self, ctx: &mut BurstCtx<'_>, bucket: u64, key: u64) {
        let val = key ^ 0xc1e4;
        let mut b = bucket;
        loop {
            for i in 0..PAIRS {
                let k = ctx.load_u64(pair_addr(b, i));
                if k == key {
                    ctx.store_u64(pair_addr(b, i) + 8, val);
                    ctx.ofence();
                    return;
                }
                if k == 0 {
                    // CLHT ordering: value first, fence, then key (the
                    // key write publishes the pair).
                    ctx.store_u64(pair_addr(b, i) + 8, val);
                    ctx.ofence();
                    ctx.store_u64(pair_addr(b, i), key);
                    ctx.ofence();
                    return;
                }
            }
            let next = ctx.load_u64(next_addr(b));
            if next == 0 {
                let nb = self.arena.alloc(64);
                ctx.store_u64(pair_addr(nb, 0) + 8, val);
                ctx.store_u64(pair_addr(nb, 0), key);
                ctx.ofence();
                ctx.store_u64(next_addr(b), nb);
                ctx.ofence();
                return;
            }
            b = next;
        }
    }

    fn lookup(&mut self, ctx: &mut BurstCtx<'_>, key: u64) {
        let mut b = bucket_addr(fnv1a(key));
        loop {
            for i in 0..PAIRS {
                if ctx.load_u64(pair_addr(b, i)) == key {
                    ctx.load_u64(pair_addr(b, i) + 8);
                    return;
                }
            }
            b = ctx.load_u64(next_addr(b));
            if b == 0 {
                return;
            }
        }
    }
}

impl ThreadProgram for PClht {
    fn boxed_clone(&self) -> Option<Box<dyn ThreadProgram>> {
        Some(Box::new(self.clone()))
    }

    fn next_burst(&mut self, tid: ThreadId, ctx: &mut BurstCtx<'_>) -> BurstStatus {
        init_once(ctx, CLHT_INIT_FLAG, |_| {
            // Buckets live in a statically-addressed zeroed region: no
            // setup writes needed.
        });

        match std::mem::replace(&mut self.phase, Phase::Idle) {
            Phase::Idle => {}
            Phase::Locked {
                key,
                bucket,
                lock,
                mut phase,
            } => {
                match phase.step(lock, ctx, tid, 30) {
                    LockStep::EnterCritical => {
                        self.locked_insert(ctx, bucket, key);
                        self.phase = Phase::Locked {
                            key,
                            bucket,
                            lock,
                            phase,
                        };
                    }
                    LockStep::StillAcquiring => {
                        self.phase = Phase::Locked {
                            key,
                            bucket,
                            lock,
                            phase,
                        };
                    }
                    LockStep::Released => {
                        ctx.dfence();
                        ctx.op_completed();
                        self.ops_left -= 1;
                    }
                }
                return BurstStatus::Running;
            }
        }

        if self.ops_left == 0 {
            ctx.dfence();
            return BurstStatus::Finished;
        }
        ctx.compute(self.params.think_cycles);
        let key = self.sampler.sample(&mut self.rng);
        if self.rng.chance(self.params.update_fraction) {
            let h = fnv1a(key);
            let bucket = bucket_addr(h);
            self.phase = Phase::Locked {
                key,
                bucket,
                // CLHT locks per bucket; stripe by bucket index so
                // concurrent writers to nearby buckets contend
                // realistically.
                lock: SpinLock::striped(lock_region(0), h % BUCKETS, 128),
                phase: LockPhase::start(),
            };
        } else {
            self.lookup(ctx, key);
            ctx.op_completed();
            self.ops_left -= 1;
        }
        BurstStatus::Running
    }

    fn name(&self) -> &str {
        "p-clht"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_core::{Flavor, ModelKind, SimBuilder};
    use asap_sim_core::SimConfig;

    fn run(threads: usize, ops: u64, key_space: u64) -> asap_core::Sim {
        let params = WorkloadParams {
            threads,
            ops_per_thread: ops,
            seed: 31,
            key_space,
            ..Default::default()
        };
        let programs: Vec<Box<dyn ThreadProgram>> = (0..threads)
            .map(|t| -> Box<dyn ThreadProgram> { Box::new(PClht::new(t, &params)) })
            .collect();
        let mut sim = SimBuilder::new(SimConfig::paper(), ModelKind::Asap, Flavor::Release)
            .programs(programs)
            .build();
        let out = sim.run_to_completion();
        assert!(out.all_done);
        sim
    }

    #[test]
    fn clht_completes() {
        let sim = run(1, 60, 128);
        assert_eq!(sim.stats().ops_completed, 60);
    }

    #[test]
    fn clht_values_stored_in_buckets() {
        let sim = run(1, 50, 64);
        let pm = sim.pm();
        let mut pairs = 0;
        for b in 0..BUCKETS {
            let addr = bucket_addr(b);
            for i in 0..PAIRS {
                let k = pm.read_u64(pair_addr(addr, i));
                if k != 0 {
                    assert_eq!(pm.read_u64(pair_addr(addr, i) + 8), k ^ 0xc1e4);
                    pairs += 1;
                }
            }
        }
        assert!(pairs > 0);
    }

    #[test]
    fn zipf_skew_raises_contention() {
        // 160 ops/thread: short runs put only a handful of conflicts on
        // either side and the comparison drowns in noise.
        let run_with = |zipf: Option<f64>| {
            let params = WorkloadParams {
                threads: 4,
                ops_per_thread: 160,
                seed: 31,
                key_space: 4096,
                zipf_theta: zipf,
                ..Default::default()
            };
            let programs: Vec<Box<dyn ThreadProgram>> = (0..4)
                .map(|t| -> Box<dyn ThreadProgram> { Box::new(PClht::new(t, &params)) })
                .collect();
            let mut sim = SimBuilder::new(SimConfig::paper(), ModelKind::Hops, Flavor::Release)
                .programs(programs)
                .build();
            sim.run_to_completion();
            sim.stats().inter_t_epoch_conflict
        };
        let uniform = run_with(None);
        let skewed = run_with(Some(0.99));
        assert!(
            skewed >= uniform,
            "Zipf(0.99) should not reduce contention (uniform={uniform}, zipf={skewed})"
        );
    }

    #[test]
    fn clht_multithreaded_contention() {
        // Tiny key space concentrates threads on few buckets: lots of
        // lock hand-offs (cross deps).
        let sim = run(4, 25, 16);
        assert_eq!(sim.stats().ops_completed, 100);
        assert!(sim.stats().inter_t_epoch_conflict > 0);
    }
}
