//! P-ART: a RECIPE-style persistent adaptive radix tree (SOSP'19).
//!
//! RECIPE converts the concurrent ART by persisting a new node/leaf
//! *before* publishing it and publishing with a CAS on the parent's child
//! pointer (lock-free inserts, no global locks). We model a fixed-depth
//! radix tree: [`LEVELS`] levels of 8-bit fan-out over the hashed key,
//! 256-pointer inner nodes, leaves carrying the key plus a value blob.
//!
//! The persist pattern per insert:
//!
//! 1. write the leaf (key, value lines), `ofence`;
//! 2. CAS the parent slot to publish, `ofence`;
//! 3. `dfence` before returning to the client.
//!
//! Lock-free CAS publication over a shared tree gives P-ART the high
//! cross-thread dependency rate of the paper's Figure 2.

use crate::common::{fnv1a, init_once, Arena, KeySampler, WorkloadParams, GLOBALS_BASE};
use asap_core::{BurstCtx, BurstStatus, ThreadProgram};
use asap_sim_core::{DetRng, ThreadId};

/// Radix levels (8 bits each).
pub const LEVELS: u32 = 3;
const NODE_BYTES: u64 = 256 * 8;
pub(crate) const LEAF_TAG: u64 = 1 << 63;

pub(crate) const ART_ROOT: u64 = GLOBALS_BASE + 0x200;
const ART_INIT_FLAG: u64 = GLOBALS_BASE + 0x208;

pub(crate) fn slot(node: u64, byte: u64) -> u64 {
    node + byte * 8
}

pub(crate) fn radix_byte(h: u64, level: u32) -> u64 {
    (h >> (level * 8)) & 0xff
}

/// P-ART insert/lookup workload.
#[derive(Clone)]
pub struct PArt {
    #[allow(dead_code)]
    tid: usize,
    rng: DetRng,
    sampler: KeySampler,
    arena: Arena,
    ops_left: u64,
    params: WorkloadParams,
}

impl PArt {
    /// Build the program for one thread.
    pub fn new(thread: usize, params: &WorkloadParams) -> PArt {
        PArt {
            tid: thread,
            rng: params.rng_for(thread),
            sampler: params.key_sampler(),
            arena: Arena::for_thread(thread),
            ops_left: params.ops_per_thread,
            params: params.clone(),
        }
    }

    fn setup(ctx: &mut BurstCtx<'_>, arena: &mut Arena) {
        let root = arena.alloc(NODE_BYTES);
        ctx.poke_durable_u64(ART_ROOT, root);
    }

    /// Persist a new leaf for `key` and return its tagged pointer.
    fn make_leaf(&mut self, ctx: &mut BurstCtx<'_>, key: u64) -> u64 {
        let bytes = 64 + self.params.value_bytes as u64;
        let leaf = self.arena.alloc(bytes);
        ctx.store_u64(leaf, key);
        let lines = (self.params.value_bytes as u64).div_ceil(64);
        for l in 0..lines {
            ctx.store_u64(leaf + 64 + l * 64, key.rotate_left(l as u32 + 1));
        }
        ctx.ofence(); // leaf durable before publication
        leaf | LEAF_TAG
    }

    fn insert(&mut self, ctx: &mut BurstCtx<'_>, key: u64) {
        let h = fnv1a(key);
        // ROWEX-style node synchronization, annotated at subtree
        // granularity for the race-free release-persistency port: a
        // writer acquires the top-level slot's sync word and releases it
        // after publishing.
        let sync = ART_ROOT + 0x1000 + radix_byte(h, 0) * 64;
        ctx.acquire_load(sync);
        let mut node = ctx.load_u64(ART_ROOT);
        for level in 0..LEVELS {
            let s = slot(node, radix_byte(h, level));
            let child = ctx.load_u64(s);
            let last = level == LEVELS - 1;
            if child == 0 {
                if last {
                    // Publish a leaf here.
                    let leaf = self.make_leaf(ctx, key);
                    if ctx.cas_u64(s, 0, leaf) {
                        ctx.ofence();
                        ctx.release_store(sync, h);
                        return;
                    }
                    // Lost the race: fall through and retry the slot.
                } else {
                    // Install a new inner node (persist, fence, publish).
                    let inner = self.arena.alloc(NODE_BYTES);
                    ctx.store_u64(inner, 0); // touch header line
                    ctx.ofence();
                    if !ctx.cas_u64(s, 0, inner) {
                        self.arena.free(inner, NODE_BYTES);
                    }
                }
            }
            let child = ctx.load_u64(s);
            if child & LEAF_TAG != 0 {
                if last {
                    // Slot already holds a leaf: update its value in
                    // place (persist value lines, fence). The value line
                    // keeps its key-derived tag so recovery can validate
                    // it.
                    let leaf = child & !LEAF_TAG;
                    let existing = ctx.load_u64(leaf);
                    if existing == key {
                        ctx.store_u64(leaf + 64, key.rotate_left(1));
                        ctx.ofence();
                        ctx.release_store(sync, h);
                        return;
                    }
                    // Hash-collision with a different key at full depth:
                    // replace via CAS (the slot is contended by other
                    // threads' CASes, so the publish must be an atomic
                    // RMW).
                    let nl = self.make_leaf(ctx, key);
                    let _ = ctx.cas_u64(s, child, nl);
                    ctx.ofence();
                    ctx.release_store(sync, h);
                    return;
                }
                // A leaf sits on our path (shouldn't at fixed depth);
                // treat as replace.
                let nl = self.make_leaf(ctx, key);
                let _ = ctx.cas_u64(s, child, nl);
                ctx.ofence();
                ctx.release_store(sync, h);
                return;
            }
            if child == 0 {
                // CAS lost to a concurrent leaf? retry once via load.
                continue;
            }
            node = child;
        }
    }

    fn lookup(&mut self, ctx: &mut BurstCtx<'_>, key: u64) {
        let h = fnv1a(key);
        let mut node = ctx.load_u64(ART_ROOT);
        for level in 0..LEVELS {
            let child = ctx.load_u64(slot(node, radix_byte(h, level)));
            if child == 0 {
                return;
            }
            if child & LEAF_TAG != 0 {
                let leaf = child & !LEAF_TAG;
                ctx.load_u64(leaf);
                ctx.load_u64(leaf + 64);
                return;
            }
            node = child;
        }
    }
}

impl ThreadProgram for PArt {
    fn boxed_clone(&self) -> Option<Box<dyn ThreadProgram>> {
        Some(Box::new(self.clone()))
    }

    fn next_burst(&mut self, _tid: ThreadId, ctx: &mut BurstCtx<'_>) -> BurstStatus {
        init_once(ctx, ART_INIT_FLAG, |c| Self::setup(c, &mut self.arena));
        if self.ops_left == 0 {
            ctx.dfence();
            return BurstStatus::Finished;
        }
        ctx.compute(self.params.think_cycles);
        let key = self.sampler.sample(&mut self.rng);
        if self.rng.chance(self.params.update_fraction) {
            self.insert(ctx, key);
            ctx.dfence();
        } else {
            self.lookup(ctx, key);
        }
        ctx.op_completed();
        self.ops_left -= 1;
        BurstStatus::Running
    }

    fn name(&self) -> &str {
        "p-art"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_core::{Flavor, ModelKind, SimBuilder};
    use asap_sim_core::SimConfig;

    fn run(threads: usize, ops: u64) -> asap_core::Sim {
        let params = WorkloadParams {
            threads,
            ops_per_thread: ops,
            seed: 21,
            key_space: 512,
            ..Default::default()
        };
        let programs: Vec<Box<dyn ThreadProgram>> = (0..threads)
            .map(|t| -> Box<dyn ThreadProgram> { Box::new(PArt::new(t, &params)) })
            .collect();
        let mut sim = SimBuilder::new(SimConfig::paper(), ModelKind::Asap, Flavor::Release)
            .programs(programs)
            .build();
        let out = sim.run_to_completion();
        assert!(out.all_done);
        sim
    }

    #[test]
    fn part_completes_and_stores() {
        let sim = run(1, 50);
        assert_eq!(sim.stats().ops_completed, 50);
        assert!(sim.stats().stores > 50);
    }

    #[test]
    fn part_inserted_key_is_reachable() {
        let sim = run(1, 40);
        let pm = sim.pm();
        // Walk a few random keys the RNG would have produced and check
        // reachability of at least one.
        let mut found = 0;
        let mut rng = WorkloadParams {
            seed: 21,
            ..Default::default()
        }
        .rng_for(0);
        for _ in 0..40 {
            let key = rng.below(512) + 1;
            let h = fnv1a(key);
            let mut node = pm.read_u64(ART_ROOT);
            for level in 0..LEVELS {
                let child = pm.read_u64(slot(node, radix_byte(h, level)));
                if child == 0 {
                    break;
                }
                if child & LEAF_TAG != 0 {
                    if pm.read_u64(child & !LEAF_TAG) == key {
                        found += 1;
                    }
                    break;
                }
                node = child;
                let _ = level;
            }
        }
        assert!(found > 0, "no inserted key reachable");
    }

    #[test]
    fn part_multithreaded_races_resolve() {
        let sim = run(4, 30);
        assert_eq!(sim.stats().ops_completed, 120);
    }
}
