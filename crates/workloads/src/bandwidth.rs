//! The Figure 13 bandwidth microbenchmark.
//!
//! §VII-C: "The benchmark issues 256-byte writes alternating across 2 MCs
//! and the writes are ordered using an ofence." With the paper's 256 B
//! interleaving, consecutive 256 B blocks land on alternating memory
//! controllers, so a design that must drain MC0 before flushing to MC1
//! (conservative flushing) leaves half the system bandwidth idle —
//! exactly the behaviour Figure 13 quantifies.

use crate::common::{WorkloadParams, STATIC_BASE};
use asap_core::{BurstCtx, BurstStatus, ThreadProgram};
use asap_sim_core::ThreadId;

const BW_REGION: u64 = STATIC_BASE + 0x1000_0000;
/// Bytes per ordered write burst (4 cache lines).
pub const BLOCK_BYTES: u64 = 256;

/// Figure 13 microbenchmark program.
#[derive(Clone)]
pub struct Bandwidth {
    tid: usize,
    ops_left: u64,
    block: u64,
    region_blocks: u64,
}

impl Bandwidth {
    /// Build the program for one thread.
    pub fn new(thread: usize, params: &WorkloadParams) -> Bandwidth {
        Bandwidth {
            tid: thread,
            ops_left: params.ops_per_thread,
            block: 0,
            // Cycle through a window large enough to defeat coalescing
            // but small enough to stay cache-resident.
            region_blocks: 1024,
        }
    }

    fn block_addr(&self) -> u64 {
        // Per-thread stripe; consecutive blocks alternate MCs under the
        // 256 B interleaving.
        BW_REGION
            + self.tid as u64 * self.region_blocks * BLOCK_BYTES
            + (self.block % self.region_blocks) * BLOCK_BYTES
    }
}

impl ThreadProgram for Bandwidth {
    fn boxed_clone(&self) -> Option<Box<dyn ThreadProgram>> {
        Some(Box::new(self.clone()))
    }

    fn next_burst(&mut self, _tid: ThreadId, ctx: &mut BurstCtx<'_>) -> BurstStatus {
        if self.ops_left == 0 {
            ctx.dfence();
            return BurstStatus::Finished;
        }
        // Issue a few ordered 256-byte writes per burst to keep burst
        // overhead negligible.
        for _ in 0..4 {
            let base = self.block_addr();
            self.block += 1;
            for line in 0..(BLOCK_BYTES / 64) {
                ctx.store_u64(base + line * 64, self.block ^ line);
            }
            ctx.ofence();
        }
        ctx.op_completed();
        self.ops_left -= 1;
        BurstStatus::Running
    }

    fn name(&self) -> &str {
        "bandwidth"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_core::{Flavor, ModelKind, SimBuilder};
    use asap_sim_core::SimConfig;

    fn run(model: ModelKind) -> asap_core::Sim {
        let params = WorkloadParams {
            threads: 2,
            ops_per_thread: 50,
            ..Default::default()
        };
        let programs: Vec<Box<dyn ThreadProgram>> = (0..2)
            .map(|t| -> Box<dyn ThreadProgram> { Box::new(Bandwidth::new(t, &params)) })
            .collect();
        let mut sim = SimBuilder::new(SimConfig::paper(), model, Flavor::Release)
            .programs(programs)
            .build();
        let out = sim.run_to_completion();
        assert!(out.all_done);
        sim
    }

    #[test]
    fn blocks_alternate_memory_controllers() {
        let cfg = SimConfig::paper();
        let b = Bandwidth::new(0, &WorkloadParams::default());
        let a0 = b.block_addr();
        let a1 = a0 + BLOCK_BYTES;
        assert_ne!(cfg.mc_of_addr(a0), cfg.mc_of_addr(a1));
    }

    #[test]
    fn asap_utilizes_more_bandwidth_than_hops() {
        let asap = run(ModelKind::Asap);
        let hops = run(ModelKind::Hops);
        let ua = asap.media_utilization() * asap.now().raw() as f64 / asap.now().raw() as f64; // utilization fraction
        let uh = hops.media_utilization();
        // Same total writes, so lower runtime == higher utilization.
        assert!(
            asap.now() <= hops.now(),
            "ASAP should finish no later (asap={}, hops={})",
            asap.now(),
            hops.now()
        );
        let _ = (ua, uh);
    }
}
