//! Request services: adapters that serve one [`Request`] at a time
//! against the WHISPER application structures.
//!
//! A service is the server-side half of the open-loop frontend: the
//! [`OpenLoop`](super::OpenLoop) driver decides *when* a request starts
//! (arrival process, client queueing) and a [`RequestService`] decides
//! *what memory traffic serving it produces*. Services reuse the exact
//! persist-critical sections of the closed-loop apps (memcached's
//! locked SET, echo's local-log append + batched master merge, nstore's
//! WAL transaction), so the persistency models see the same flush/fence
//! discipline under open-loop load that the Table III figures measure.

use super::{Request, RequestOp};
use crate::apps::echo::{Echo, BATCH, MASTER_LOCK, MASTER_REGION, MASTER_SLOTS};
use crate::apps::memcached::Memcached;
use crate::apps::nstore::Nstore;
use crate::common::{fnv1a, lock_region, LockPhase, LockStep, SpinLock, LOCK_STRIPES};
use crate::WorkloadParams;
use asap_core::BurstCtx;
use asap_sim_core::ThreadId;

/// What a service reports after one burst of serving a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceStep {
    /// The request needs more bursts (lock spin, multi-phase critical
    /// section); call `step` again when this burst has executed.
    Pending,
    /// The final burst of this request was emitted; once it executes,
    /// the request is complete (the client-visible ack instant).
    Done,
}

/// Serves requests against a persistent structure, one burst at a time.
///
/// `step` is called with the same request until it returns
/// [`ServiceStep::Done`]; the service owns any cross-burst state (lock
/// phases, batches).
pub trait RequestService {
    /// Emit the next burst of work for `req`.
    fn step(&mut self, tid: ThreadId, ctx: &mut BurstCtx<'_>, req: &Request) -> ServiceStep;

    /// Report label.
    fn name(&self) -> &'static str;
}

/// Memcached: GET = lock-free chain walk; SET = striped bucket lock,
/// out-of-place item persist, head swing, release, `dfence` before the
/// client ack — the same protocol as the closed-loop workload.
pub struct MemcachedService {
    app: Memcached,
    lock: Option<(u64, SpinLock, LockPhase)>,
}

impl MemcachedService {
    /// Service for one server thread.
    pub fn new(thread: usize, params: &WorkloadParams) -> MemcachedService {
        MemcachedService {
            app: Memcached::new(thread, params),
            lock: None,
        }
    }
}

impl RequestService for MemcachedService {
    fn step(&mut self, tid: ThreadId, ctx: &mut BurstCtx<'_>, req: &Request) -> ServiceStep {
        if let Some((key, lock, mut phase)) = self.lock.take() {
            return match phase.step(lock, ctx, tid, 30) {
                LockStep::EnterCritical => {
                    self.app.set(ctx, key);
                    self.lock = Some((key, lock, phase));
                    ServiceStep::Pending
                }
                LockStep::StillAcquiring => {
                    self.lock = Some((key, lock, phase));
                    ServiceStep::Pending
                }
                LockStep::Released => {
                    ctx.dfence();
                    ServiceStep::Done
                }
            };
        }
        match req.op {
            RequestOp::Get => {
                self.app.get(ctx, req.key);
                ServiceStep::Done
            }
            RequestOp::Set => {
                let lock = SpinLock::striped(lock_region(2), fnv1a(req.key), LOCK_STRIPES);
                self.lock = Some((req.key, lock, LockPhase::start()));
                // Start acquiring in this same burst.
                self.step(tid, ctx, req)
            }
        }
    }

    fn name(&self) -> &'static str {
        "memcached"
    }
}

/// Echo: SET = thread-local persistent log append (acked after the
/// local persist, as echo does); every [`BATCH`]th set additionally
/// merges the batch into the master index under the global lock before
/// acking. GET = master-index slot probe.
pub struct EchoService {
    app: Echo,
    since_merge: u64,
    merge: Option<LockPhase>,
}

impl EchoService {
    /// Service for one server thread.
    pub fn new(thread: usize, params: &WorkloadParams) -> EchoService {
        EchoService {
            app: Echo::new(thread, params),
            since_merge: 0,
            merge: None,
        }
    }
}

impl RequestService for EchoService {
    fn step(&mut self, tid: ThreadId, ctx: &mut BurstCtx<'_>, req: &Request) -> ServiceStep {
        if let Some(mut phase) = self.merge.take() {
            let lock = SpinLock::at(MASTER_LOCK);
            return match phase.step(lock, ctx, tid, 60) {
                LockStep::EnterCritical => {
                    self.app.master_merge(ctx);
                    self.merge = Some(phase);
                    ServiceStep::Pending
                }
                LockStep::StillAcquiring => {
                    self.merge = Some(phase);
                    ServiceStep::Pending
                }
                LockStep::Released => {
                    ctx.dfence();
                    self.since_merge = 0;
                    ServiceStep::Done
                }
            };
        }
        match req.op {
            RequestOp::Set => {
                self.app.local_put(ctx, req.key);
                self.since_merge += 1;
                if self.since_merge >= BATCH {
                    self.merge = Some(LockPhase::start());
                    ServiceStep::Pending
                } else {
                    ServiceStep::Done
                }
            }
            RequestOp::Get => {
                let slot = MASTER_REGION + (fnv1a(req.key) % MASTER_SLOTS) * 64;
                ctx.load_u64(slot);
                ctx.load_u64(slot + 8);
                ServiceStep::Done
            }
        }
    }

    fn name(&self) -> &'static str {
        "echo"
    }
}

/// Nstore: SET = one key-derived WAL transaction (log record, row
/// updates, commit marker, `dfence`); GET = key-derived read-only row
/// loads. Single-burst either way.
pub struct NstoreService {
    app: Nstore,
}

impl NstoreService {
    /// Service for one server thread.
    pub fn new(thread: usize, params: &WorkloadParams) -> NstoreService {
        NstoreService {
            app: Nstore::new(thread, params),
        }
    }
}

impl RequestService for NstoreService {
    fn step(&mut self, _tid: ThreadId, ctx: &mut BurstCtx<'_>, req: &Request) -> ServiceStep {
        match req.op {
            RequestOp::Set => self.app.serve_update(ctx, req.key),
            RequestOp::Get => self.app.serve_read(ctx, req.key),
        }
        ServiceStep::Done
    }

    fn name(&self) -> &'static str {
        "nstore"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_pm_mem::{PmSpace, WriteJournal};

    fn params() -> WorkloadParams {
        WorkloadParams {
            threads: 1,
            ops_per_thread: 0,
            seed: 5,
            ..Default::default()
        }
    }

    fn req(op: RequestOp, key: u64) -> Request {
        Request { at: 0, op, key }
    }

    #[test]
    fn memcached_get_is_single_burst() {
        let mut pm = PmSpace::new();
        let mut j = WriteJournal::disabled();
        let mut ctx = BurstCtx::new(&mut pm, &mut j);
        let mut s = MemcachedService::new(0, &params());
        let step = s.step(ThreadId(0), &mut ctx, &req(RequestOp::Get, 9));
        assert_eq!(step, ServiceStep::Done);
        assert!(ctx.op_count() >= 1, "GET must emit loads");
    }

    #[test]
    fn memcached_set_runs_the_lock_protocol_to_done() {
        let mut pm = PmSpace::new();
        let mut j = WriteJournal::enabled();
        let mut s = MemcachedService::new(0, &params());
        let r = req(RequestOp::Set, 9);
        let mut steps = 0;
        loop {
            let mut ctx = BurstCtx::new(&mut pm, &mut j);
            let out = s.step(ThreadId(0), &mut ctx, &r);
            assert!(ctx.op_count() >= 1, "every burst must emit ops");
            steps += 1;
            assert!(steps < 10, "set never completed");
            if out == ServiceStep::Done {
                break;
            }
        }
        // Uncontended: ticket+critical burst, then release, then done.
        assert!(steps >= 2, "set must span multiple bursts, got {steps}");
    }

    #[test]
    fn echo_merges_every_batch() {
        let mut pm = PmSpace::new();
        let mut j = WriteJournal::enabled();
        let mut s = EchoService::new(0, &params());
        let mut merged_requests = 0;
        for k in 0..(2 * BATCH) {
            let r = req(RequestOp::Set, k + 1);
            let mut bursts = 0;
            loop {
                let mut ctx = BurstCtx::new(&mut pm, &mut j);
                let out = s.step(ThreadId(0), &mut ctx, &r);
                bursts += 1;
                assert!(bursts < 10);
                if out == ServiceStep::Done {
                    break;
                }
            }
            if bursts > 1 {
                merged_requests += 1;
            }
        }
        assert_eq!(merged_requests, 2, "one merge per BATCH sets");
        // The master index saw the batch.
        let mut filled = 0;
        for slot in 0..MASTER_SLOTS {
            if pm.read_u64(MASTER_REGION + slot * 64) != 0 {
                filled += 1;
            }
        }
        assert!(filled > 0);
    }

    #[test]
    fn nstore_requests_are_single_burst_and_key_deterministic() {
        let mk_ops = |key: u64, op: RequestOp| {
            let mut pm = PmSpace::new();
            let mut j = WriteJournal::enabled();
            let mut s = NstoreService::new(0, &params());
            let mut ctx = BurstCtx::new(&mut pm, &mut j);
            assert_eq!(
                s.step(ThreadId(0), &mut ctx, &req(op, key)),
                ServiceStep::Done
            );
            ctx.into_parts().0
        };
        // Same key, same traffic — independent of any RNG state.
        let a = mk_ops(42, RequestOp::Set);
        let b = mk_ops(42, RequestOp::Set);
        assert_eq!(a, b);
        // Reads emit loads only.
        let r = mk_ops(42, RequestOp::Get);
        assert!(!r.is_empty());
        assert!(r.iter().all(|o| !o.is_store()));
    }
}
