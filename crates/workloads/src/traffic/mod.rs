//! Open-loop, trace-driven traffic frontend.
//!
//! The closed-loop workloads (each thread issues its next op the moment
//! the previous one completes) measure *throughput*; real services are
//! driven by request streams that arrive whether or not the server is
//! ready, and the interesting number is the *latency distribution* —
//! especially its tail — under a given offered load. This module supplies
//! that frontend:
//!
//! - [`arrivals`]-style open-loop arrival processes (fixed, Poisson,
//!   bursty MMPP, diurnal ramp), all on the deterministic [`DetRng`];
//! - Zipf-skewed key popularity via [`KeySampler`](crate::KeySampler);
//! - [`generate`]: a `(config, seed)` pair deterministically expanded
//!   into a time-ordered request bank;
//! - a text [`trace`] format so banks can be exported, inspected and
//!   replayed byte-identically;
//! - [`RequestService`] adapters mapping requests onto the WHISPER apps'
//!   persist-critical sections (memcached, echo, nstore);
//! - the [`OpenLoop`] driver: a [`ThreadProgram`](asap_core::ThreadProgram)
//!   that sleeps until each arrival, serves it, and records the
//!   queueing-delay / service-time split in constant memory
//!   ([`LatencySplit`](asap_sim_core::LatencySplit)).
//!
//! Determinism contract: a request bank is a pure function of its
//! [`TrafficConfig`]; the measured latency tables are a pure function of
//! bank × app × timing model — independent of host threads, worker
//! counts and event-queue kind.

mod arrivals;
mod driver;
mod service;
mod trace;

pub use arrivals::{ArrivalKind, ArrivalProcess, BURST_FACTOR};
pub use driver::{new_sink, LatencySink, OpenLoop};
pub use service::{EchoService, MemcachedService, NstoreService, RequestService, ServiceStep};
pub use trace::{format_trace, parse_trace, TraceError, TRACE_HEADER};

use crate::common::KeySampler;
use asap_sim_core::DetRng;
use std::fmt;

/// What a request asks the service to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestOp {
    /// Read the value of a key.
    Get,
    /// Write (insert or update) a key.
    Set,
}

impl RequestOp {
    /// Trace-file / report label.
    pub fn label(self) -> &'static str {
        match self {
            RequestOp::Get => "get",
            RequestOp::Set => "set",
        }
    }
}

impl fmt::Display for RequestOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One request in an open-loop stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Absolute arrival instant, in simulated cycles.
    pub at: u64,
    /// The operation.
    pub op: RequestOp,
    /// The key operated on (1-based, as [`KeySampler`] produces).
    pub key: u64,
}

/// Parameters fully determining a generated request bank.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficConfig {
    /// Number of requests in the bank.
    pub requests: u64,
    /// Arrival process shape.
    pub arrival: ArrivalKind,
    /// Mean inter-arrival gap in cycles (offered load = `1 / mean_gap`).
    pub mean_gap: u64,
    /// Zipf skew of key popularity; `0.0` means uniform.
    pub zipf_theta: f64,
    /// Key-space size.
    pub key_space: u64,
    /// Fraction of requests that are SETs (the rest are GETs).
    pub update_fraction: f64,
    /// Master seed; every derived stream (arrivals, keys, op mix) is
    /// split from it.
    pub seed: u64,
}

impl Default for TrafficConfig {
    fn default() -> TrafficConfig {
        TrafficConfig {
            requests: 10_000,
            arrival: ArrivalKind::Poisson,
            mean_gap: 600,
            zipf_theta: 0.99,
            key_space: 1 << 16,
            update_fraction: 0.5,
            seed: 42,
        }
    }
}

/// Deterministically expand a [`TrafficConfig`] into a time-ordered
/// request bank. Same config ⇒ byte-identical bank, on any host.
pub fn generate(cfg: &TrafficConfig) -> Vec<Request> {
    let mut base = DetRng::seed(cfg.seed);
    // Independent derived streams so e.g. changing the arrival process
    // does not perturb which keys are popular.
    let arrival_rng = base.split(0x5452_4146_4649_4301);
    let mut key_rng = base.split(0x5452_4146_4649_4302);
    let mut op_rng = base.split(0x5452_4146_4649_4303);

    let mut arrivals = ArrivalProcess::new(cfg.arrival, cfg.mean_gap, arrival_rng);
    let sampler = KeySampler::zipf(cfg.key_space, cfg.zipf_theta);

    let mut bank = Vec::with_capacity(cfg.requests as usize);
    for _ in 0..cfg.requests {
        let at = arrivals.next_at();
        let key = sampler.sample(&mut key_rng);
        let op = if op_rng.chance(cfg.update_fraction) {
            RequestOp::Set
        } else {
            RequestOp::Get
        };
        bank.push(Request { at, op, key });
    }
    bank
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic_and_time_ordered() {
        let cfg = TrafficConfig {
            requests: 5_000,
            ..TrafficConfig::default()
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5_000);
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(a.iter().all(|r| (1..=cfg.key_space).contains(&r.key)));
    }

    #[test]
    fn update_fraction_shapes_the_op_mix() {
        let mut cfg = TrafficConfig {
            requests: 20_000,
            update_fraction: 0.25,
            ..TrafficConfig::default()
        };
        let sets = generate(&cfg)
            .iter()
            .filter(|r| r.op == RequestOp::Set)
            .count();
        let frac = sets as f64 / cfg.requests as f64;
        assert!((0.22..0.28).contains(&frac), "set fraction {frac}");

        cfg.update_fraction = 0.0;
        assert!(generate(&cfg).iter().all(|r| r.op == RequestOp::Get));
        cfg.update_fraction = 1.0;
        assert!(generate(&cfg).iter().all(|r| r.op == RequestOp::Set));
    }

    #[test]
    fn zipf_skews_key_popularity() {
        let cfg = TrafficConfig {
            requests: 30_000,
            zipf_theta: 0.99,
            key_space: 1 << 14,
            ..TrafficConfig::default()
        };
        let bank = generate(&cfg);
        // Under YCSB-default skew the single hottest key draws far more
        // than its uniform share (which would be ~2 hits here).
        let mut counts = std::collections::HashMap::new();
        for r in &bank {
            *counts.entry(r.key).or_insert(0u64) += 1;
        }
        let hottest = counts.values().max().copied().unwrap();
        assert!(hottest > 500, "zipf 0.99 hot key only {hottest} hits");

        let uniform = TrafficConfig {
            zipf_theta: 0.0,
            ..cfg
        };
        let bank = generate(&uniform);
        let mut counts = std::collections::HashMap::new();
        for r in &bank {
            *counts.entry(r.key).or_insert(0u64) += 1;
        }
        let hottest = counts.values().max().copied().unwrap();
        assert!(hottest < 50, "uniform hot key drew {hottest} hits");
    }

    #[test]
    fn changing_the_arrival_kind_keeps_keys_and_ops() {
        // Derived-stream isolation: the key/op sequences only depend on
        // the seed, not on which arrival process is in front.
        let poisson = TrafficConfig::default();
        let bursty = TrafficConfig {
            arrival: ArrivalKind::Bursty,
            ..poisson.clone()
        };
        let a = generate(&poisson);
        let b = generate(&bursty);
        assert_ne!(
            a.iter().map(|r| r.at).collect::<Vec<_>>(),
            b.iter().map(|r| r.at).collect::<Vec<_>>()
        );
        assert_eq!(
            a.iter().map(|r| (r.op, r.key)).collect::<Vec<_>>(),
            b.iter().map(|r| (r.op, r.key)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn banks_round_trip_through_the_trace_format() {
        let cfg = TrafficConfig {
            requests: 1_000,
            ..TrafficConfig::default()
        };
        let bank = generate(&cfg);
        let text = format_trace(&bank);
        assert_eq!(parse_trace(&text).unwrap(), bank);
    }
}
