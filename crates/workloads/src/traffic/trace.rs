//! The traffic trace-file format: a line-oriented text format carrying
//! one request per line, plus a strict parser for replay.
//!
//! ```text
//! # asap-traffic v1
//! # cycle op key        (comment lines and blanks are ignored)
//! 412 set 17
//! 903 get 5
//! 1401 set 17
//! ```
//!
//! The first non-blank line must be the [`TRACE_HEADER`] magic.
//! Arrival cycles must be non-decreasing (replay assumes a
//! time-ordered stream). Parse errors carry 1-based line numbers.

use super::{Request, RequestOp};
use std::fmt;

/// Magic first line of a traffic trace file.
pub const TRACE_HEADER: &str = "# asap-traffic v1";

/// A parse failure, with the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number of the offending line (0 = whole file).
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for TraceError {}

fn err(line: usize, msg: impl Into<String>) -> TraceError {
    TraceError {
        line,
        msg: msg.into(),
    }
}

/// Render requests as a trace file (header + one line per request).
pub fn format_trace(reqs: &[Request]) -> String {
    let mut out = String::with_capacity(reqs.len() * 16 + TRACE_HEADER.len() + 1);
    out.push_str(TRACE_HEADER);
    out.push('\n');
    for r in reqs {
        out.push_str(&format!("{} {} {}\n", r.at, r.op.label(), r.key));
    }
    out
}

/// Parse a trace file back into a request stream.
///
/// Strict: a bad magic line, malformed field, or time travel (a request
/// arriving before its predecessor) is an error, never silently skipped.
pub fn parse_trace(text: &str) -> Result<Vec<Request>, TraceError> {
    let mut reqs = Vec::new();
    let mut header_seen = false;
    let mut last_at = 0u64;
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if !header_seen {
            if line != TRACE_HEADER {
                return Err(err(
                    lineno,
                    format!("expected header {TRACE_HEADER:?}, found {line:?}"),
                ));
            }
            header_seen = true;
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_ascii_whitespace();
        let (Some(at_s), Some(op_s), Some(key_s), None) =
            (fields.next(), fields.next(), fields.next(), fields.next())
        else {
            return Err(err(
                lineno,
                format!("expected `<cycle> <op> <key>`: {line:?}"),
            ));
        };
        let at: u64 = at_s
            .parse()
            .map_err(|_| err(lineno, format!("bad cycle {at_s:?}")))?;
        let op = match op_s {
            "get" => RequestOp::Get,
            "set" => RequestOp::Set,
            other => return Err(err(lineno, format!("bad op {other:?} (get|set)"))),
        };
        let key: u64 = key_s
            .parse()
            .map_err(|_| err(lineno, format!("bad key {key_s:?}")))?;
        if at < last_at {
            return Err(err(
                lineno,
                format!("arrival {at} precedes previous arrival {last_at}"),
            ));
        }
        last_at = at;
        reqs.push(Request { at, op, key });
    }
    if !header_seen {
        return Err(err(0, format!("missing header {TRACE_HEADER:?}")));
    }
    Ok(reqs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Request> {
        vec![
            Request {
                at: 412,
                op: RequestOp::Set,
                key: 17,
            },
            Request {
                at: 903,
                op: RequestOp::Get,
                key: 5,
            },
            Request {
                at: 903,
                op: RequestOp::Set,
                key: 17,
            },
        ]
    }

    #[test]
    fn round_trips_byte_identically() {
        let reqs = sample();
        let text = format_trace(&reqs);
        let back = parse_trace(&text).unwrap();
        assert_eq!(back, reqs);
        // And the re-rendered file is byte-identical.
        assert_eq!(format_trace(&back), text);
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let text = format!("{TRACE_HEADER}\n\n# a comment\n10 get 1\n\n20 set 2\n");
        let reqs = parse_trace(&text).unwrap();
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[1].key, 2);
    }

    #[test]
    fn missing_header_is_an_error() {
        let e = parse_trace("10 get 1\n").unwrap_err();
        assert!(e.msg.contains("header"), "{e}");
        let e = parse_trace("").unwrap_err();
        assert_eq!(e.line, 0);
    }

    #[test]
    fn malformed_lines_carry_line_numbers() {
        let text = format!("{TRACE_HEADER}\n10 get 1\n20 frob 2\n");
        let e = parse_trace(&text).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.msg.contains("frob"), "{e}");

        let text = format!("{TRACE_HEADER}\nnot-a-number get 1\n");
        assert_eq!(parse_trace(&text).unwrap_err().line, 2);

        let text = format!("{TRACE_HEADER}\n10 get 1 extra\n");
        assert!(parse_trace(&text).is_err());

        let text = format!("{TRACE_HEADER}\n10 get\n");
        assert!(parse_trace(&text).is_err());
    }

    #[test]
    fn time_travel_is_rejected() {
        let text = format!("{TRACE_HEADER}\n100 get 1\n50 get 2\n");
        let e = parse_trace(&text).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.msg.contains("precedes"), "{e}");
    }
}
