//! Open-loop arrival processes.
//!
//! Every process is driven by the workspace's own [`DetRng`], so a given
//! `(kind, mean_gap, seed)` triple produces exactly one arrival timeline
//! on every machine, worker count and queue kind — the determinism the
//! byte-identical latency tables rest on. Arrival instants are absolute
//! simulated cycles, strictly non-decreasing.

use asap_sim_core::DetRng;
use std::fmt;
use std::str::FromStr;

/// The shape of the arrival process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrivalKind {
    /// Constant inter-arrival gap (deterministic rate).
    Fixed,
    /// Memoryless arrivals: exponential inter-arrival gaps with the
    /// configured mean (an open-loop Poisson stream).
    Poisson,
    /// A two-state Markov-modulated Poisson process: a calm state at
    /// roughly the configured mean and a burst state arriving
    /// [`BURST_FACTOR`]× faster, with geometric dwell times. Models
    /// flash crowds and antagonist batch jobs.
    Bursty,
    /// A Poisson stream whose rate ramps up and down over a long
    /// period (piecewise-linear triangle wave between 0.25× and 1.75×
    /// the base rate) — a compressed diurnal load curve.
    Diurnal,
}

/// Burst-state speedup of [`ArrivalKind::Bursty`].
pub const BURST_FACTOR: f64 = 8.0;
/// Per-arrival probability of entering the burst state.
const P_ENTER: f64 = 1.0 / 32.0;
/// Per-arrival probability of leaving the burst state.
const P_EXIT: f64 = 1.0 / 8.0;
/// Calm-state gap stretch that compensates the burst state so the
/// long-run mean gap of `Bursty` stays close to the configured mean:
/// the stationary burst fraction is `P_ENTER / (P_ENTER + P_EXIT)` =
/// 1/5 of arrivals, so `E[gap] = base · (4/5 + 1/(5·8)) = base · 33/40`.
const BURSTY_BASE_SCALE: f64 = 40.0 / 33.0;
/// Period of the diurnal ramp, in units of `mean_gap` (about a thousand
/// requests per "day", so multi-million-request runs sweep many days).
const DIURNAL_PERIOD_GAPS: u64 = 1024;

impl ArrivalKind {
    /// All arrival kinds, in CLI order.
    pub fn all() -> [ArrivalKind; 4] {
        [
            ArrivalKind::Fixed,
            ArrivalKind::Poisson,
            ArrivalKind::Bursty,
            ArrivalKind::Diurnal,
        ]
    }

    /// CLI / report label.
    pub fn label(self) -> &'static str {
        match self {
            ArrivalKind::Fixed => "fixed",
            ArrivalKind::Poisson => "poisson",
            ArrivalKind::Bursty => "bursty",
            ArrivalKind::Diurnal => "diurnal",
        }
    }
}

impl fmt::Display for ArrivalKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for ArrivalKind {
    type Err = String;
    fn from_str(s: &str) -> Result<ArrivalKind, String> {
        Ok(match s {
            "fixed" => ArrivalKind::Fixed,
            "poisson" => ArrivalKind::Poisson,
            "bursty" | "mmpp" => ArrivalKind::Bursty,
            "diurnal" => ArrivalKind::Diurnal,
            other => return Err(format!("unknown arrival process: {other}")),
        })
    }
}

/// A deterministic generator of absolute arrival instants.
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    kind: ArrivalKind,
    mean_gap: f64,
    rng: DetRng,
    at: u64,
    in_burst: bool,
}

impl ArrivalProcess {
    /// An arrival process with the given mean inter-arrival gap in
    /// cycles (the open-loop offered rate is `1 / mean_gap` requests
    /// per cycle).
    ///
    /// # Panics
    ///
    /// Panics if `mean_gap` is zero.
    pub fn new(kind: ArrivalKind, mean_gap: u64, rng: DetRng) -> ArrivalProcess {
        assert!(mean_gap > 0, "mean_gap must be at least one cycle");
        ArrivalProcess {
            kind,
            mean_gap: mean_gap as f64,
            rng,
            at: 0,
            in_burst: false,
        }
    }

    /// An exponential gap with the given mean. The uniform draw is
    /// taken from the top 53 bits and offset so it is never zero
    /// (`-ln(u)` stays finite; the largest possible gap is ~37× mean).
    fn exp_gap(&mut self, mean: f64) -> u64 {
        let u = ((self.rng.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64;
        (-u.ln() * mean).round() as u64
    }

    /// The next absolute arrival instant (non-decreasing).
    pub fn next_at(&mut self) -> u64 {
        let gap = match self.kind {
            ArrivalKind::Fixed => self.mean_gap.round() as u64,
            ArrivalKind::Poisson => self.exp_gap(self.mean_gap),
            ArrivalKind::Bursty => {
                // State transition decided per arrival (geometric dwell).
                if self.in_burst {
                    if self.rng.chance(P_EXIT) {
                        self.in_burst = false;
                    }
                } else if self.rng.chance(P_ENTER) {
                    self.in_burst = true;
                }
                let mean = if self.in_burst {
                    self.mean_gap * BURSTY_BASE_SCALE / BURST_FACTOR
                } else {
                    self.mean_gap * BURSTY_BASE_SCALE
                };
                self.exp_gap(mean)
            }
            ArrivalKind::Diurnal => {
                // Rate factor follows a triangle wave over the period,
                // evaluated at the previous arrival instant: 0.25× at
                // the trough, 1.75× at the peak, mean 1×.
                let period = (DIURNAL_PERIOD_GAPS as f64 * self.mean_gap).max(1.0);
                let phase = (self.at as f64 % period) / period;
                let tri = 1.0 - (2.0 * phase - 1.0).abs();
                let factor = 0.25 + 1.5 * tri;
                self.exp_gap(self.mean_gap / factor)
            }
        };
        self.at = self.at.saturating_add(gap);
        self.at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timeline(kind: ArrivalKind, mean_gap: u64, n: usize, seed: u64) -> Vec<u64> {
        let mut p = ArrivalProcess::new(kind, mean_gap, DetRng::seed(seed));
        (0..n).map(|_| p.next_at()).collect()
    }

    #[test]
    fn arrivals_are_non_decreasing_and_deterministic() {
        for kind in ArrivalKind::all() {
            let a = timeline(kind, 500, 2000, 7);
            let b = timeline(kind, 500, 2000, 7);
            assert_eq!(a, b, "{kind}: same seed must replay identically");
            assert!(
                a.windows(2).all(|w| w[0] <= w[1]),
                "{kind}: arrivals must be non-decreasing"
            );
        }
    }

    #[test]
    fn fixed_is_exact() {
        let a = timeline(ArrivalKind::Fixed, 250, 10, 1);
        assert_eq!(a, (1..=10).map(|i| i * 250).collect::<Vec<_>>());
    }

    #[test]
    fn poisson_mean_gap_is_close() {
        let n = 20_000;
        let a = timeline(ArrivalKind::Poisson, 400, n, 99);
        let mean = a.last().unwrap() / n as u64;
        assert!((300..500).contains(&mean), "poisson mean gap {mean}");
    }

    #[test]
    fn bursty_produces_short_and_long_stretches() {
        let a = timeline(ArrivalKind::Bursty, 400, 50_000, 3);
        let gaps: Vec<u64> = a.windows(2).map(|w| w[1] - w[0]).collect();
        // Burst-state gaps concentrate near mean/8; calm gaps near the
        // mean. Both regimes must be visible.
        let short = gaps.iter().filter(|&&g| g < 100).count();
        let long = gaps.iter().filter(|&&g| g > 400).count();
        assert!(short > 1000, "no burst regime: {short}");
        assert!(long > 1000, "no calm regime: {long}");
        // Long-run mean stays near the configured mean gap.
        let mean = a.last().unwrap() / (a.len() as u64);
        assert!((300..500).contains(&mean), "bursty mean gap {mean}");
    }

    #[test]
    fn diurnal_rate_varies_over_the_period() {
        let mean_gap = 100u64;
        let a = timeline(ArrivalKind::Diurnal, mean_gap, 40_000, 5);
        // Count arrivals per quarter-period: the peak quarter must see
        // substantially more than the trough quarter.
        let period = DIURNAL_PERIOD_GAPS * mean_gap;
        let mut quarters = [0u64; 4];
        for &t in &a {
            quarters[((t % period) * 4 / period) as usize] += 1;
        }
        let peak = *quarters.iter().max().unwrap();
        let trough = *quarters.iter().min().unwrap();
        assert!(
            peak > trough * 2,
            "diurnal ramp too flat: {quarters:?} (peak {peak}, trough {trough})"
        );
    }

    #[test]
    #[should_panic(expected = "mean_gap")]
    fn zero_gap_rejected() {
        ArrivalProcess::new(ArrivalKind::Poisson, 0, DetRng::seed(1));
    }

    #[test]
    fn kind_round_trips_through_str() {
        for k in ArrivalKind::all() {
            assert_eq!(k.label().parse::<ArrivalKind>().unwrap(), k);
        }
        assert!("nope".parse::<ArrivalKind>().is_err());
    }
}
