//! The open-loop driver: a [`ThreadProgram`] that replays a time-ordered
//! request bank against a [`RequestService`], measuring per-request
//! queueing delay and service time.
//!
//! Open loop means arrivals do not wait for completions: each request has
//! a fixed arrival instant, and a request that arrives while the thread
//! is still serving an earlier one queues (its queueing delay grows).
//! When the thread is ahead of the stream it sleeps via
//! [`BurstCtx::idle`] until the next arrival — *exactly* until, which is
//! what keeps the measured timeline a pure function of the request bank
//! and the timing model, independent of engine scheduling details.

use super::service::{RequestService, ServiceStep};
use super::Request;
use asap_core::{BurstCtx, BurstStatus, ThreadProgram};
use asap_sim_core::{LatencySplit, ThreadId};
use std::sync::{Arc, Mutex};

/// Per-thread latency results, collected after the simulation: slot `t`
/// holds thread `t`'s [`LatencySplit`] once it finishes.
pub type LatencySink = Arc<Mutex<Vec<LatencySplit>>>;

/// An empty sink with one slot per driver thread.
pub fn new_sink(threads: usize) -> LatencySink {
    Arc::new(Mutex::new(vec![LatencySplit::new(); threads]))
}

/// Where the driver is in its current request's lifecycle.
#[derive(Debug, Clone, Copy)]
enum DriveState {
    /// No request in flight; waiting for (or about to take) the next
    /// arrival.
    Idle,
    /// The service is emitting bursts for request `idx`.
    Serving {
        /// Index into the request bank.
        idx: usize,
        /// Simulated instant service began.
        started: u64,
    },
    /// The final service burst was emitted; on the next call `ctx.now()`
    /// is the completion instant.
    Completing {
        /// Index into the request bank.
        idx: usize,
        /// Simulated instant service began.
        started: u64,
    },
}

/// One open-loop client/server thread.
///
/// Thread `t` of an `n`-thread run serves bank indices `t, t + n,
/// t + 2n, …` — a round-robin partition of the globally time-ordered
/// stream, so every thread sees the global arrival shape and the
/// partition is independent of execution order.
pub struct OpenLoop {
    service: Box<dyn RequestService + Send + Sync>,
    bank: Arc<Vec<Request>>,
    next: usize,
    stride: usize,
    think: u64,
    state: DriveState,
    lat: LatencySplit,
    sink: LatencySink,
    slot: usize,
    flushed: bool,
}

impl OpenLoop {
    /// Driver for thread `slot` of a `stride`-thread run over `bank`,
    /// prefixing each request's service with `think` compute cycles and
    /// flushing its latency split into `sink[slot]` when the bank is
    /// exhausted.
    pub fn new(
        service: Box<dyn RequestService + Send + Sync>,
        bank: Arc<Vec<Request>>,
        slot: usize,
        stride: usize,
        think: u64,
        sink: LatencySink,
    ) -> OpenLoop {
        assert!(stride > 0, "stride must be positive");
        assert!(
            slot < stride,
            "slot {slot} out of range for stride {stride}"
        );
        OpenLoop {
            service,
            bank,
            next: slot,
            stride,
            think,
            state: DriveState::Idle,
            lat: LatencySplit::new(),
            sink,
            slot,
            flushed: false,
        }
    }
}

impl ThreadProgram for OpenLoop {
    fn next_burst(&mut self, tid: ThreadId, ctx: &mut BurstCtx<'_>) -> BurstStatus {
        let now = ctx.now().0;
        loop {
            match self.state {
                DriveState::Completing { idx, started } => {
                    // This call's `now` is the instant the final service
                    // burst finished executing: the client-visible ack.
                    let req = self.bank[idx];
                    self.lat.record(started - req.at, now - started);
                    ctx.op_completed();
                    self.state = DriveState::Idle;
                }
                DriveState::Serving { idx, started } => {
                    let req = self.bank[idx];
                    return match self.service.step(tid, ctx, &req) {
                        ServiceStep::Pending => BurstStatus::Running,
                        ServiceStep::Done => {
                            self.state = DriveState::Completing { idx, started };
                            BurstStatus::Running
                        }
                    };
                }
                DriveState::Idle => {
                    if self.next >= self.bank.len() {
                        if !self.flushed {
                            let done = std::mem::take(&mut self.lat);
                            self.sink.lock().unwrap()[self.slot] = done;
                            self.flushed = true;
                        }
                        return BurstStatus::Finished;
                    }
                    let req = self.bank[self.next];
                    if req.at > now {
                        // Sleep exactly until the arrival; the next burst
                        // generates at `req.at`.
                        ctx.idle(req.at - now);
                        return BurstStatus::Running;
                    }
                    // The request has arrived (possibly long ago — that
                    // backlog is its queueing delay). Start serving in
                    // this same burst.
                    self.next += self.stride;
                    self.state = DriveState::Serving {
                        idx: self.next - self.stride,
                        started: now,
                    };
                    ctx.compute(self.think);
                }
            }
        }
    }

    fn name(&self) -> &str {
        self.service.name()
    }
}

#[cfg(test)]
mod tests {
    use super::super::service::NstoreService;
    use super::super::{generate, ArrivalKind, RequestOp, TrafficConfig};
    use super::*;
    use crate::WorkloadParams;
    use asap_core::{Flavor, ModelKind, SimBuilder};
    use asap_sim_core::SimConfig;

    fn run(threads: usize, cfg: &TrafficConfig) -> Vec<LatencySplit> {
        let bank = Arc::new(generate(cfg));
        let sink = new_sink(threads);
        let params = WorkloadParams {
            threads,
            ops_per_thread: 0,
            seed: cfg.seed,
            ..Default::default()
        };
        let programs: Vec<Box<dyn ThreadProgram>> = (0..threads)
            .map(|t| -> Box<dyn ThreadProgram> {
                Box::new(OpenLoop::new(
                    Box::new(NstoreService::new(t, &params)),
                    Arc::clone(&bank),
                    t,
                    threads,
                    0,
                    Arc::clone(&sink),
                ))
            })
            .collect();
        let mut sim = SimBuilder::new(SimConfig::paper(), ModelKind::Asap, Flavor::Release)
            .programs(programs)
            .build();
        let out = sim.run_to_completion();
        assert!(out.all_done, "open-loop run must drain the bank");
        let splits = sink.lock().unwrap().clone();
        splits
    }

    fn cfg(requests: u64) -> TrafficConfig {
        TrafficConfig {
            requests,
            arrival: ArrivalKind::Poisson,
            mean_gap: 2_000,
            zipf_theta: 0.99,
            key_space: 256,
            update_fraction: 0.5,
            seed: 11,
        }
    }

    #[test]
    fn every_request_is_measured_exactly_once() {
        let c = cfg(200);
        let splits = run(2, &c);
        let total: u64 = splits.iter().map(|s| s.count()).sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn latency_tables_are_identical_across_runs() {
        let c = cfg(150);
        let a = run(2, &c);
        let b = run(2, &c);
        assert_eq!(a, b, "same bank + seed must replay byte-identically");
    }

    #[test]
    fn unloaded_requests_have_zero_queueing() {
        // Gaps far larger than a txn's service time: the thread always
        // sleeps to the arrival instant, so queueing delay is exactly 0.
        let c = TrafficConfig {
            requests: 50,
            arrival: ArrivalKind::Fixed,
            mean_gap: 2_000_000,
            zipf_theta: 0.0,
            key_space: 64,
            update_fraction: 1.0,
            seed: 4,
        };
        let splits = run(1, &c);
        assert_eq!(splits[0].count(), 50);
        assert_eq!(splits[0].queueing.max(), 0, "no load, no queueing");
        assert!(splits[0].service.min() > 0, "txns take simulated time");
    }

    #[test]
    fn overload_builds_queueing_delay() {
        // Gaps of one cycle: the server can't keep up, so later requests
        // wait far longer than their service time.
        let c = TrafficConfig {
            requests: 300,
            arrival: ArrivalKind::Fixed,
            mean_gap: 1,
            zipf_theta: 0.0,
            key_space: 64,
            update_fraction: 1.0,
            seed: 4,
        };
        let splits = run(1, &c);
        assert_eq!(splits[0].count(), 300);
        assert!(
            splits[0].queueing.max() > splits[0].service.max() * 10,
            "overload must accumulate queueing ({} vs service {})",
            splits[0].queueing.max(),
            splits[0].service.max()
        );
    }

    #[test]
    fn stride_partitions_the_bank_without_loss() {
        let c = TrafficConfig {
            requests: 101, // deliberately not a multiple of the stride
            ..cfg(0)
        };
        let splits = run(4, &c);
        let total: u64 = splits.iter().map(|s| s.count()).sum();
        assert_eq!(total, 101);
        // A GET/SET mix reaches every thread.
        let bank = generate(&c);
        assert!(bank.iter().any(|r| r.op == RequestOp::Get));
        assert!(bank.iter().any(|r| r.op == RequestOp::Set));
    }
}
