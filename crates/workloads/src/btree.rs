//! FAST & FAIR-style persistent B+-tree (FAST'18), plus a Masstree-shaped
//! two-layer variant standing in for RECIPE's P-Masstree.
//!
//! Node layout (eight cache lines = 512 B):
//!
//! * line 0: header — `[lock, count, is_leaf, sibling, parent-hint]`;
//! * lines 1..7: up to [`FANOUT`] `(key, ptr)` pairs, kept sorted.
//!
//! FAST & FAIR's trick is in-place sorted insertion by shifting entries
//! one 8-byte word at a time, with a persist barrier after each shift so
//! any crash leaves either the old or a tolerable transient state. That
//! is exactly an `ofence`-per-shift pattern — small epochs, many of them —
//! which is why the paper's Figure 2 shows fast_fair with a very high
//! epoch count.
//!
//! The Masstree variant layers two trees: an upper tree maps the high key
//! half to a lower-layer root, and the value lives in the lower tree —
//! doubling the traversal and write path, like RECIPE's P-Masstree.

use crate::common::{
    init_once, lock_region, Arena, KeySampler, LockPhase, LockStep, SpinLock, WorkloadParams,
    GLOBALS_BASE, LOCK_STRIPES,
};
use asap_core::{BurstCtx, BurstStatus, ThreadProgram};
use asap_sim_core::{DetRng, ThreadId};

/// Maximum `(key, ptr)` pairs per node.
pub const FANOUT: u64 = 14;
const NODE_BYTES: u64 = 512;

pub(crate) const HDR_COUNT: u64 = 8;
pub(crate) const HDR_LEAF: u64 = 16;
pub(crate) const HDR_SIBLING: u64 = 24;

pub(crate) const BT_ROOT_PTR: u64 = GLOBALS_BASE + 0x100;
const BT_INIT_FLAG: u64 = GLOBALS_BASE + 0x108;
const MT_ROOT_PTR: u64 = GLOBALS_BASE + 0x118;

pub(crate) fn pair_addr(node: u64, i: u64) -> u64 {
    node + 64 + i * 16
}

/// In-flight multi-burst operation state.
#[derive(Clone)]
enum Phase {
    Idle,
    /// Waiting on a leaf lock; on entry the critical section runs the
    /// insert.
    Locked {
        key: u64,
        leaf: u64,
        lock: SpinLock,
        phase: LockPhase,
        layer2: bool,
    },
}

/// FAST&FAIR B+-tree workload (also the P-Masstree stand-in).
#[derive(Clone)]
pub struct FastFair {
    #[allow(dead_code)]
    tid: usize,
    rng: DetRng,
    sampler: KeySampler,
    arena: Arena,
    ops_left: u64,
    params: WorkloadParams,
    layered: bool,
    phase: Phase,
}

impl FastFair {
    /// Plain FAST&FAIR tree.
    pub fn new(thread: usize, params: &WorkloadParams) -> FastFair {
        FastFair {
            tid: thread,
            rng: params.rng_for(thread),
            sampler: params.key_sampler(),
            arena: Arena::for_thread(thread),
            ops_left: params.ops_per_thread,
            params: params.clone(),
            layered: false,
            phase: Phase::Idle,
        }
    }

    /// Masstree-shaped two-layer variant.
    pub fn new_masstree(thread: usize, params: &WorkloadParams) -> FastFair {
        FastFair {
            layered: true,
            ..FastFair::new(thread, params)
        }
    }

    fn setup(ctx: &mut BurstCtx<'_>, arena: &mut Arena) {
        let root = arena.alloc(NODE_BYTES);
        ctx.poke_durable_u64(root + HDR_LEAF, 1);
        ctx.poke_durable_u64(BT_ROOT_PTR, root);
        let mroot = arena.alloc(NODE_BYTES);
        ctx.poke_durable_u64(mroot + HDR_LEAF, 1);
        ctx.poke_durable_u64(MT_ROOT_PTR, mroot);
    }

    /// Walk from `root` to the leaf that should hold `key` (timed loads).
    fn find_leaf(&self, ctx: &mut BurstCtx<'_>, root_ptr: u64, key: u64) -> u64 {
        let mut node = ctx.load_u64(root_ptr);
        loop {
            let is_leaf = ctx.load_u64(node + HDR_LEAF);
            if is_leaf == 1 {
                return node;
            }
            let count = ctx.load_u64(node + HDR_COUNT);
            // Inner node: pairs are (separator key, child).
            let mut child = ctx.load_u64(pair_addr(node, 0) + 8);
            for i in 0..count {
                let k = ctx.load_u64(pair_addr(node, i));
                if key >= k {
                    child = ctx.load_u64(pair_addr(node, i) + 8);
                } else {
                    break;
                }
            }
            node = child;
        }
    }

    /// FAST-style sorted insert into a (locked) leaf. Returns `false`
    /// when the leaf is full and must split first.
    fn insert_into_leaf(&mut self, ctx: &mut BurstCtx<'_>, leaf: u64, key: u64, val: u64) -> bool {
        let count = ctx.load_u64(leaf + HDR_COUNT);
        // In-place update?
        for i in 0..count {
            if ctx.load_u64(pair_addr(leaf, i)) == key {
                ctx.store_u64(pair_addr(leaf, i) + 8, val);
                ctx.ofence();
                return true;
            }
        }
        if count >= FANOUT {
            return false;
        }
        // Shift larger entries right one at a time, fencing each 16-byte
        // move (the FAST&FAIR 8-byte-atomic shift discipline).
        let mut i = count;
        while i > 0 {
            let k = ctx.load_u64(pair_addr(leaf, i - 1));
            if k <= key {
                break;
            }
            let v = ctx.load_u64(pair_addr(leaf, i - 1) + 8);
            ctx.store_u64(pair_addr(leaf, i), k);
            ctx.store_u64(pair_addr(leaf, i) + 8, v);
            ctx.ofence();
            i -= 1;
        }
        ctx.store_u64(pair_addr(leaf, i) + 8, val);
        ctx.ofence();
        ctx.store_u64(pair_addr(leaf, i), key);
        ctx.ofence();
        ctx.store_u64(leaf + HDR_COUNT, count + 1);
        ctx.ofence();
        true
    }

    /// Split a full leaf: move the upper half to a new sibling, link it,
    /// and (simplified) push the separator into the root-level directory.
    /// Runs under the leaf lock plus the tree's structural lock.
    fn split_leaf(&mut self, ctx: &mut BurstCtx<'_>, root_ptr: u64, leaf: u64) {
        let new = self.arena.alloc(NODE_BYTES);
        ctx.store_u64(new + HDR_LEAF, 1);
        let count = ctx.load_u64(leaf + HDR_COUNT);
        let half = count / 2;
        for i in half..count {
            let k = ctx.load_u64(pair_addr(leaf, i));
            let v = ctx.load_u64(pair_addr(leaf, i) + 8);
            ctx.store_u64(pair_addr(new, i - half), k);
            ctx.store_u64(pair_addr(new, i - half) + 8, v);
        }
        ctx.store_u64(new + HDR_COUNT, count - half);
        // Persist sibling before linking (standard split ordering).
        ctx.ofence();
        let old_sib = ctx.load_u64(leaf + HDR_SIBLING);
        ctx.store_u64(new + HDR_SIBLING, old_sib);
        ctx.store_u64(leaf + HDR_SIBLING, new);
        ctx.ofence();
        ctx.store_u64(leaf + HDR_COUNT, half);
        ctx.ofence();
        // Push the separator up. If the root is a leaf, grow a new root.
        let sep = ctx.load_u64(pair_addr(new, 0));
        let root = ctx.load_u64(root_ptr);
        if root == leaf {
            let nr = self.arena.alloc(NODE_BYTES);
            ctx.store_u64(nr + HDR_LEAF, 0);
            ctx.store_u64(pair_addr(nr, 0), 0);
            ctx.store_u64(pair_addr(nr, 0) + 8, leaf);
            ctx.store_u64(pair_addr(nr, 1), sep);
            ctx.store_u64(pair_addr(nr, 1) + 8, new);
            ctx.store_u64(nr + HDR_COUNT, 2);
            ctx.ofence();
            ctx.store_u64(root_ptr, nr);
            ctx.ofence();
        } else {
            // Insert the separator into the root directory node (bounded
            // two-level tree keeps the reproduction simple while
            // preserving the write/fence pattern of real splits).
            let rcount = ctx.load_u64(root + HDR_COUNT);
            if rcount < FANOUT {
                let mut i = rcount;
                while i > 1 {
                    let k = ctx.load_u64(pair_addr(root, i - 1));
                    if k <= sep {
                        break;
                    }
                    let v = ctx.load_u64(pair_addr(root, i - 1) + 8);
                    ctx.store_u64(pair_addr(root, i), k);
                    ctx.store_u64(pair_addr(root, i) + 8, v);
                    ctx.ofence();
                    i -= 1;
                }
                ctx.store_u64(pair_addr(root, i), sep);
                ctx.store_u64(pair_addr(root, i) + 8, new);
                ctx.ofence();
                ctx.store_u64(root + HDR_COUNT, rcount + 1);
                ctx.ofence();
            }
            // A full directory leaves the sibling reachable via the leaf
            // chain — searches still succeed (FAIR's linked leaves).
        }
    }

    fn lookup(&mut self, ctx: &mut BurstCtx<'_>, key: u64) {
        let leaf = self.find_leaf(ctx, BT_ROOT_PTR, key);
        let count = ctx.load_u64(leaf + HDR_COUNT);
        for i in 0..count {
            if ctx.load_u64(pair_addr(leaf, i)) == key {
                ctx.load_u64(pair_addr(leaf, i) + 8);
                break;
            }
        }
    }

    fn start_insert(&mut self, ctx: &mut BurstCtx<'_>, key: u64, layer2: bool) {
        let root_ptr = if layer2 { MT_ROOT_PTR } else { BT_ROOT_PTR };
        let leaf = self.find_leaf(ctx, root_ptr, key);
        // Per-leaf locks live in a striped lock table keyed by the leaf
        // address.
        let lock = SpinLock::striped(lock_region(5), leaf >> 9, LOCK_STRIPES);
        self.phase = Phase::Locked {
            key,
            leaf,
            lock,
            phase: LockPhase::start(),
            layer2,
        };
    }
}

impl ThreadProgram for FastFair {
    fn boxed_clone(&self) -> Option<Box<dyn ThreadProgram>> {
        Some(Box::new(self.clone()))
    }

    fn next_burst(&mut self, tid: ThreadId, ctx: &mut BurstCtx<'_>) -> BurstStatus {
        init_once(ctx, BT_INIT_FLAG, |c| Self::setup(c, &mut self.arena));

        match std::mem::replace(&mut self.phase, Phase::Idle) {
            Phase::Idle => {}
            Phase::Locked {
                key,
                leaf,
                lock,
                mut phase,
                layer2,
            } => {
                match phase.step(lock, ctx, tid, 40) {
                    LockStep::EnterCritical => {
                        let root_ptr = if layer2 { MT_ROOT_PTR } else { BT_ROOT_PTR };
                        // Re-walk under the lock (the leaf may have split).
                        let cur = self.find_leaf(ctx, root_ptr, key);
                        let target = if cur == leaf { leaf } else { cur };
                        let val = key ^ 0xbeef;
                        if !self.insert_into_leaf(ctx, target, key, val) {
                            self.split_leaf(ctx, root_ptr, target);
                            let again = self.find_leaf(ctx, root_ptr, key);
                            let _ = self.insert_into_leaf(ctx, again, key, val);
                        }
                        self.phase = Phase::Locked {
                            key,
                            leaf,
                            lock,
                            phase,
                            layer2,
                        };
                    }
                    LockStep::StillAcquiring => {
                        self.phase = Phase::Locked {
                            key,
                            leaf,
                            lock,
                            phase,
                            layer2,
                        };
                    }
                    LockStep::Released => {
                        if layer2 || !self.layered {
                            ctx.dfence();
                            ctx.op_completed();
                            self.ops_left -= 1;
                        } else {
                            // Masstree: continue into the second layer.
                            let k2 = crate::common::fnv1a(key);
                            self.start_insert(ctx, k2, true);
                        }
                    }
                }
                return BurstStatus::Running;
            }
        }

        if self.ops_left == 0 {
            ctx.dfence();
            return BurstStatus::Finished;
        }

        ctx.compute(self.params.think_cycles);
        let key = self.sampler.sample(&mut self.rng);
        if !self.rng.chance(self.params.update_fraction) {
            self.lookup(ctx, key);
            ctx.op_completed();
            self.ops_left -= 1;
            return BurstStatus::Running;
        }
        self.start_insert(ctx, key, false);
        BurstStatus::Running
    }

    fn name(&self) -> &str {
        if self.layered {
            "p-masstree"
        } else {
            "fast_fair"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_core::{Flavor, ModelKind, SimBuilder};
    use asap_sim_core::SimConfig;

    fn run(layered: bool, threads: usize, ops: u64, key_space: u64) -> asap_core::Sim {
        let params = WorkloadParams {
            threads,
            ops_per_thread: ops,
            seed: 11,
            key_space,
            ..Default::default()
        };
        let programs: Vec<Box<dyn ThreadProgram>> = (0..threads)
            .map(|t| -> Box<dyn ThreadProgram> {
                if layered {
                    Box::new(FastFair::new_masstree(t, &params))
                } else {
                    Box::new(FastFair::new(t, &params))
                }
            })
            .collect();
        let mut sim = SimBuilder::new(SimConfig::paper(), ModelKind::Asap, Flavor::Release)
            .programs(programs)
            .build();
        let out = sim.run_to_completion();
        assert!(out.all_done);
        sim
    }

    #[test]
    fn fastfair_single_thread_completes() {
        let sim = run(false, 1, 50, 200);
        assert_eq!(sim.stats().ops_completed, 50);
    }

    #[test]
    fn fastfair_keys_sorted_in_leaves() {
        let sim = run(false, 1, 60, 500);
        let pm = sim.pm();
        // Walk the leaf chain from the leftmost leaf; keys must ascend.
        let mut node = pm.read_u64(BT_ROOT_PTR);
        while pm.read_u64(node + HDR_LEAF) == 0 {
            node = pm.read_u64(pair_addr(node, 0) + 8);
        }
        let mut last = 0;
        let mut seen = 0;
        while node != 0 {
            let count = pm.read_u64(node + HDR_COUNT);
            for i in 0..count {
                let k = pm.read_u64(pair_addr(node, i));
                assert!(k >= last, "leaf keys out of order: {k} after {last}");
                last = k;
                seen += 1;
            }
            node = pm.read_u64(node + HDR_SIBLING);
        }
        assert!(seen > 10, "tree too small: {seen}");
    }

    #[test]
    fn fastfair_multithreaded() {
        let sim = run(false, 4, 25, 400);
        assert_eq!(sim.stats().ops_completed, 100);
        assert!(sim.stats().epochs_created > 100, "FAST&FAIR is fence-heavy");
    }

    #[test]
    fn masstree_double_layer_writes_more() {
        let ff = run(false, 2, 20, 300);
        let mt = run(true, 2, 20, 300);
        assert!(
            mt.stats().stores > ff.stats().stores,
            "two layers must write more (mt={} ff={})",
            mt.stats().stores,
            ff.stats().stores
        );
    }
}
