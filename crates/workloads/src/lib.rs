//! The workload suite of the ASAP paper (Table III), re-implemented as
//! instrumented persistent data structures.
//!
//! Each workload is a [`ThreadProgram`]: ordinary Rust code operating on
//! the simulated persistent memory through a
//! [`BurstCtx`](asap_core::BurstCtx), with `ofence`/`dfence`/
//! `acquire`/`release` placed the way the original code places them. What
//! the persistency models see — epoch sizes, fence rates, cross-thread
//! dependency rates, address spread over the memory controllers — is
//! therefore produced by real data-structure logic, not synthetic traces.
//!
//! | paper workload | module | programming model |
//! |---|---|---|
//! | Nstore | [`apps::nstore`] | PM-native DBMS: undo-log + table updates per txn |
//! | Echo | [`apps::echo`] | scalable KV: thread-local logs + locked master index |
//! | Vacation | [`apps::vacation`] | coarse-grained lock, volatile bookkeeping in the critical section |
//! | Memcached | [`apps::memcached`] | chained hash table, per-bucket locks, PMDK-style txns |
//! | Atlas heap / queue / skiplist | [`atlas`] | lock-delimited failure-atomic sections with undo logging |
//! | CCEH | [`exthash`] | extendible hashing, CAS-based inserts, segment splits |
//! | Fast_Fair | [`btree`] | B+-tree with 8-byte-atomic sorted shifts |
//! | Dash-LH | [`levelhash`] | level hashing with fingerprints and stash |
//! | Dash-EH | [`exthash`] | extendible hashing with bucket displacement |
//! | P-ART | [`art`] | RECIPE-converted adaptive radix tree |
//! | P-CLHT | [`clht`] | RECIPE-converted cache-line hash table |
//! | P-Masstree | [`btree`] | trie-of-B+-trees (masstree-shaped key layers) |
//!
//! Plus [`bandwidth`]: the Figure 13 microbenchmark (256-byte writes
//! alternating across the two memory controllers, ordered by `ofence`).
//!
//! # Example
//!
//! ```
//! use asap_workloads::{make_workload, WorkloadKind, WorkloadParams};
//! use asap_core::{Flavor, ModelKind, SimBuilder};
//! use asap_sim_core::SimConfig;
//!
//! let params = WorkloadParams { threads: 2, ops_per_thread: 20, seed: 7, ..Default::default() };
//! let programs = make_workload(WorkloadKind::Cceh, &params);
//! let mut sim = SimBuilder::new(SimConfig::paper(), ModelKind::Asap, Flavor::Release)
//!     .programs(programs)
//!     .build();
//! let out = sim.run_to_completion();
//! assert!(out.all_done);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod apps;
pub mod art;
pub mod atlas;
pub mod bandwidth;
pub mod btree;
pub mod clht;
mod common;
pub mod exthash;
pub mod levelhash;
pub mod recovery;
pub mod traffic;

pub use common::{
    Arena, KeySampler, SpinLock, WorkloadParams, GLOBALS_BASE, LOCK_CELL_BYTES, STATIC_BASE,
};

use asap_core::ThreadProgram;
use std::fmt;
use std::str::FromStr;

/// The 14 workloads of Table III plus the Figure 13 microbenchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum WorkloadKind {
    Nstore,
    Echo,
    Vacation,
    Memcached,
    Heap,
    Queue,
    Skiplist,
    Cceh,
    FastFair,
    DashLh,
    DashEh,
    PArt,
    PClht,
    PMasstree,
    Bandwidth,
}

impl WorkloadKind {
    /// The Table III workloads, in the order the paper's figures use.
    pub fn all() -> [WorkloadKind; 14] {
        use WorkloadKind::*;
        [
            Nstore, Echo, Vacation, Memcached, Heap, Queue, Skiplist, Cceh, FastFair, DashLh,
            DashEh, PArt, PClht, PMasstree,
        ]
    }

    /// Figure x-axis label.
    pub fn label(self) -> &'static str {
        use WorkloadKind::*;
        match self {
            Nstore => "nstore",
            Echo => "echo",
            Vacation => "vacation",
            Memcached => "memcached",
            Heap => "heap",
            Queue => "queue",
            Skiplist => "skiplist",
            Cceh => "cceh",
            FastFair => "fast_fair",
            DashLh => "dash-lh",
            DashEh => "dash-eh",
            PArt => "p-art",
            PClht => "p-clht",
            PMasstree => "p-masstree",
            Bandwidth => "bandwidth",
        }
    }
}

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for WorkloadKind {
    type Err = String;
    fn from_str(s: &str) -> Result<WorkloadKind, String> {
        use WorkloadKind::*;
        Ok(match s {
            "nstore" => Nstore,
            "echo" => Echo,
            "vacation" => Vacation,
            "memcached" => Memcached,
            "heap" => Heap,
            "queue" => Queue,
            "skiplist" => Skiplist,
            "cceh" => Cceh,
            "fast_fair" | "fastfair" => FastFair,
            "dash-lh" | "dash_lh" => DashLh,
            "dash-eh" | "dash_eh" => DashEh,
            "p-art" | "p_art" => PArt,
            "p-clht" | "p_clht" => PClht,
            "p-masstree" | "p_masstree" => PMasstree,
            "bandwidth" => Bandwidth,
            other => return Err(format!("unknown workload: {other}")),
        })
    }
}

fn make_program(
    kind: WorkloadKind,
    t: usize,
    params: &WorkloadParams,
) -> Box<dyn ThreadProgram + Send + Sync> {
    use WorkloadKind::*;
    match kind {
        Nstore => Box::new(apps::nstore::Nstore::new(t, params)),
        Echo => Box::new(apps::echo::Echo::new(t, params)),
        Vacation => Box::new(apps::vacation::Vacation::new(t, params)),
        Memcached => Box::new(apps::memcached::Memcached::new(t, params)),
        Heap => Box::new(atlas::heap::AtlasHeap::new(t, params)),
        Queue => Box::new(atlas::queue::AtlasQueue::new(t, params)),
        Skiplist => Box::new(atlas::skiplist::AtlasSkiplist::new(t, params)),
        Cceh => Box::new(exthash::ExtHash::new_cceh(t, params)),
        FastFair => Box::new(btree::FastFair::new(t, params)),
        DashLh => Box::new(levelhash::LevelHash::new(t, params)),
        DashEh => Box::new(exthash::ExtHash::new_dash(t, params)),
        PArt => Box::new(art::PArt::new(t, params)),
        PClht => Box::new(clht::PClht::new(t, params)),
        PMasstree => Box::new(btree::FastFair::new_masstree(t, params)),
        Bandwidth => Box::new(bandwidth::Bandwidth::new(t, params)),
    }
}

/// Build the thread programs for `kind`: one program per thread, sharing
/// one structure instance.
pub fn make_workload(kind: WorkloadKind, params: &WorkloadParams) -> Vec<Box<dyn ThreadProgram>> {
    (0..params.threads)
        .map(|t| make_program(kind, t, params) as Box<dyn ThreadProgram>)
        .collect()
}

/// [`make_workload`], but the boxes are `Send + Sync` so a pristine
/// program set can sit behind an `Arc` shared across sweep workers, each
/// worker stamping out its own copy via
/// [`ThreadProgram::boxed_clone`]. Every suite workload supports
/// cloning, so `p.boxed_clone().unwrap()` never fails on these sets.
pub fn make_workload_shared(
    kind: WorkloadKind,
    params: &WorkloadParams,
) -> Vec<Box<dyn ThreadProgram + Send + Sync>> {
    (0..params.threads)
        .map(|t| make_program(kind, t, params))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_round_trips_through_str() {
        for k in WorkloadKind::all() {
            let parsed: WorkloadKind = k.label().parse().unwrap();
            assert_eq!(parsed, k);
        }
        assert!("nope".parse::<WorkloadKind>().is_err());
    }

    #[test]
    fn all_lists_fourteen() {
        assert_eq!(WorkloadKind::all().len(), 14);
    }

    #[test]
    fn every_suite_workload_supports_pristine_cloning() {
        let params = WorkloadParams {
            threads: 2,
            ops_per_thread: 5,
            seed: 3,
            ..Default::default()
        };
        for k in WorkloadKind::all()
            .into_iter()
            .chain([WorkloadKind::Bandwidth])
        {
            for p in make_workload_shared(k, &params) {
                let c = p.boxed_clone();
                assert!(c.is_some(), "{k}: suite programs must be cloneable");
                assert_eq!(c.unwrap().name(), p.name(), "{k}");
            }
        }
    }

    #[test]
    fn make_workload_builds_per_thread_programs() {
        let params = WorkloadParams {
            threads: 3,
            ops_per_thread: 5,
            seed: 1,
            ..Default::default()
        };
        for k in WorkloadKind::all() {
            let ps = make_workload(k, &params);
            assert_eq!(ps.len(), 3, "{k}");
        }
    }
}
