//! Vacation: STAMP's travel-reservation system, PMDK-transactional
//! (WHISPER suite).
//!
//! A query takes a coarse-grained lock over the reservation tables,
//! performs a PMDK-style transaction (log + a handful of row updates
//! across the car/flight/room tables), then does *volatile bookkeeping*
//! before releasing — the paper singles this out: "By the time another
//! thread acquires the lock, writes have been flushed out so early
//! flushing is not beneficial." The long compute tail inside the critical
//! section is what produces that behaviour.

use crate::common::{
    init_once, LockPhase, LockStep, SpinLock, WorkloadParams, GLOBALS_BASE, STATIC_BASE,
};
use asap_core::{BurstCtx, BurstStatus, ThreadProgram};
use asap_sim_core::{DetRng, ThreadId};

const TABLES_REGION: u64 = STATIC_BASE + 0x0c00_0000;
const TXLOG_REGION: u64 = STATIC_BASE + 0x0d00_0000;
const VAC_LOCK: u64 = GLOBALS_BASE + 0xa40; // own line: ticket + serving words
const VAC_INIT_FLAG: u64 = GLOBALS_BASE + 0xa08;

const TABLES: u64 = 3; // cars, flights, rooms
const ROWS_PER_TABLE: u64 = 4096;
const LOG_SLOTS: u64 = 2048;
/// Volatile bookkeeping cycles inside the critical section.
pub const BOOKKEEPING_CYCLES: u64 = 1500;

/// Vacation reservation workload.
#[derive(Clone)]
pub struct Vacation {
    #[allow(dead_code)]
    tid: usize,
    rng: DetRng,
    ops_left: u64,
    #[allow(dead_code)]
    params: WorkloadParams,
    log_pos: u64,
    phase: LockPhase,
    busy: bool,
}

impl Vacation {
    /// Build the program for one thread.
    pub fn new(thread: usize, params: &WorkloadParams) -> Vacation {
        Vacation {
            tid: thread,
            rng: params.rng_for(thread),
            ops_left: params.ops_per_thread,
            params: params.clone(),
            log_pos: 0,
            phase: LockPhase::start(),
            busy: false,
        }
    }

    fn reservation_txn(&mut self, ctx: &mut BurstCtx<'_>) {
        // PMDK-style: undo-log append per modified row, then the updates.
        let slot =
            TXLOG_REGION + self.tid as u64 * LOG_SLOTS * 64 + (self.log_pos % LOG_SLOTS) * 64;
        self.log_pos += 1;
        ctx.store_u64(slot, self.log_pos);
        ctx.ofence();
        // Reserve a car + flight + room: read and update one row of each
        // table.
        for t in 0..TABLES {
            let row = TABLES_REGION + t * ROWS_PER_TABLE * 64 + self.rng.below(ROWS_PER_TABLE) * 64;
            let seats = ctx.load_u64(row);
            ctx.store_u64(row, seats.wrapping_add(1));
        }
        ctx.ofence();
        ctx.store_u64(slot + 8, 1); // commit marker
        ctx.ofence();
        // Volatile bookkeeping (customer lists, stats) while still
        // holding the lock.
        ctx.compute(BOOKKEEPING_CYCLES);
    }
}

impl ThreadProgram for Vacation {
    fn boxed_clone(&self) -> Option<Box<dyn ThreadProgram>> {
        Some(Box::new(self.clone()))
    }

    fn next_burst(&mut self, tid: ThreadId, ctx: &mut BurstCtx<'_>) -> BurstStatus {
        init_once(ctx, VAC_INIT_FLAG, |_| {});
        if !self.busy {
            if self.ops_left == 0 {
                ctx.dfence();
                return BurstStatus::Finished;
            }
            ctx.compute(self.params.think_cycles);
            self.busy = true;
        }
        let lock = SpinLock::at(VAC_LOCK);
        match self.phase.step(lock, ctx, tid, 100) {
            LockStep::EnterCritical => self.reservation_txn(ctx),
            LockStep::StillAcquiring => {}
            LockStep::Released => {
                ctx.dfence();
                ctx.op_completed();
                self.ops_left -= 1;
                self.busy = false;
            }
        }
        BurstStatus::Running
    }

    fn name(&self) -> &str {
        "vacation"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_core::{Flavor, ModelKind, SimBuilder};
    use asap_sim_core::SimConfig;

    fn run(threads: usize, ops: u64) -> asap_core::Sim {
        let params = WorkloadParams {
            threads,
            ops_per_thread: ops,
            seed: 101,
            ..Default::default()
        };
        let programs: Vec<Box<dyn ThreadProgram>> = (0..threads)
            .map(|t| -> Box<dyn ThreadProgram> { Box::new(Vacation::new(t, &params)) })
            .collect();
        let mut sim = SimBuilder::new(SimConfig::paper(), ModelKind::Asap, Flavor::Release)
            .programs(programs)
            .build();
        let out = sim.run_to_completion();
        assert!(out.all_done);
        sim
    }

    #[test]
    fn vacation_completes() {
        let sim = run(2, 20);
        assert_eq!(sim.stats().ops_completed, 40);
    }

    #[test]
    fn vacation_cross_deps_are_rare() {
        // The long in-lock bookkeeping gives flushes time to drain before
        // the next thread acquires: dependencies on *uncommitted* epochs
        // should be much rarer than lock hand-offs.
        let sim = run(4, 15);
        let s = sim.stats();
        assert!(
            s.inter_t_epoch_conflict <= 2 * s.ops_completed,
            "vacation cross deps should stay bounded by lock hand-offs \
             ({} deps / {} ops)",
            s.inter_t_epoch_conflict,
            s.ops_completed
        );
    }
}
