//! WHISPER-style application workloads (ASPLOS'17): Nstore, Echo,
//! Vacation and Memcached.
//!
//! These model the *applications* of the paper's Table III: transactional
//! PM programs whose persist streams are dominated by log-append +
//! in-place-update pairs, with comparatively few cross-thread
//! dependencies (Figure 2 shows them near zero, unlike the concurrent
//! index structures).

pub mod echo;
pub mod memcached;
pub mod nstore;
pub mod vacation;
