//! Memcached with a PMDK-transactional backend (WHISPER suite).
//!
//! SET requests dominate (update-intensive configuration): hash the key
//! to one of [`BUCKETS`] chains, take the bucket lock, allocate and
//! persist the item out of place, `ofence`, swing the chain head pointer,
//! `ofence`, release, `dfence` before acking the client. GETs are
//! lock-free chain walks.

use crate::common::{
    fnv1a, init_once, lock_region, Arena, KeySampler, LockPhase, LockStep, SpinLock,
    WorkloadParams, GLOBALS_BASE, LOCK_STRIPES, STATIC_BASE,
};
use asap_core::{BurstCtx, BurstStatus, ThreadProgram};
use asap_sim_core::{DetRng, ThreadId};

/// Hash-chain buckets (each: one line holding the chain head; bucket
/// locks live in a striped lock table).
pub const BUCKETS: u64 = 1 << 8;
pub(crate) const BUCKET_REGION: u64 = STATIC_BASE + 0x0e00_0000;
const MC_INIT_FLAG: u64 = GLOBALS_BASE + 0xb00;

pub(crate) fn bucket_addr(key: u64) -> u64 {
    BUCKET_REGION + (fnv1a(key) % BUCKETS) * 64
}

#[derive(Clone)]
enum Phase {
    Idle,
    Locked {
        key: u64,
        lock: SpinLock,
        phase: LockPhase,
    },
}

/// Memcached SET/GET workload.
#[derive(Clone)]
pub struct Memcached {
    #[allow(dead_code)]
    tid: usize,
    rng: DetRng,
    sampler: KeySampler,
    arena: Arena,
    ops_left: u64,
    params: WorkloadParams,
    phase: Phase,
}

impl Memcached {
    /// Build the program for one thread.
    pub fn new(thread: usize, params: &WorkloadParams) -> Memcached {
        Memcached {
            tid: thread,
            rng: params.rng_for(thread),
            sampler: params.key_sampler(),
            arena: Arena::for_thread(thread),
            ops_left: params.ops_per_thread,
            params: params.clone(),
            phase: Phase::Idle,
        }
    }

    /// SET critical section (caller holds the bucket lock): allocate and
    /// persist the item out of place, `ofence`, swing the chain head,
    /// `ofence`. Shared with the open-loop traffic frontend.
    pub(crate) fn set(&mut self, ctx: &mut BurstCtx<'_>, key: u64) {
        let bucket = bucket_addr(key);
        // Item: [key, next, value...] — sized by value_bytes.
        let item_bytes = 64 + self.params.value_bytes as u64;
        let item = self.arena.alloc(item_bytes);
        let head = ctx.load_u64(bucket);
        ctx.store_u64(item, key);
        ctx.store_u64(item + 8, head);
        let vlines = (self.params.value_bytes as u64).div_ceil(64);
        for l in 0..vlines {
            ctx.store_u64(item + 64 + l * 64, key.rotate_left(l as u32));
        }
        ctx.ofence(); // item durable before publication
        ctx.store_u64(bucket, item);
        ctx.ofence();
    }

    /// Lock-free GET: walk the bucket chain. Shared with the open-loop
    /// traffic frontend.
    pub(crate) fn get(&mut self, ctx: &mut BurstCtx<'_>, key: u64) {
        let bucket = bucket_addr(key);
        let mut item = ctx.load_u64(bucket);
        let mut hops = 0;
        while item != 0 && hops < 16 {
            if ctx.load_u64(item) == key {
                ctx.load_u64(item + 64);
                return;
            }
            item = ctx.load_u64(item + 8);
            hops += 1;
        }
    }
}

impl ThreadProgram for Memcached {
    fn boxed_clone(&self) -> Option<Box<dyn ThreadProgram>> {
        Some(Box::new(self.clone()))
    }

    fn next_burst(&mut self, tid: ThreadId, ctx: &mut BurstCtx<'_>) -> BurstStatus {
        init_once(ctx, MC_INIT_FLAG, |_| {});

        match std::mem::replace(&mut self.phase, Phase::Idle) {
            Phase::Idle => {}
            Phase::Locked {
                key,
                lock,
                mut phase,
            } => {
                match phase.step(lock, ctx, tid, 30) {
                    LockStep::EnterCritical => {
                        self.set(ctx, key);
                        self.phase = Phase::Locked { key, lock, phase };
                    }
                    LockStep::StillAcquiring => {
                        self.phase = Phase::Locked { key, lock, phase };
                    }
                    LockStep::Released => {
                        ctx.dfence();
                        ctx.op_completed();
                        self.ops_left -= 1;
                    }
                }
                return BurstStatus::Running;
            }
        }

        if self.ops_left == 0 {
            ctx.dfence();
            return BurstStatus::Finished;
        }
        ctx.compute(self.params.think_cycles);
        let key = self.sampler.sample(&mut self.rng);
        if self.rng.chance(self.params.update_fraction) {
            let lock = SpinLock::striped(lock_region(2), fnv1a(key), LOCK_STRIPES);
            self.phase = Phase::Locked {
                key,
                lock,
                phase: LockPhase::start(),
            };
        } else {
            self.get(ctx, key);
            ctx.op_completed();
            self.ops_left -= 1;
        }
        BurstStatus::Running
    }

    fn name(&self) -> &str {
        "memcached"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_core::{Flavor, ModelKind, SimBuilder};
    use asap_sim_core::SimConfig;

    fn run(threads: usize, ops: u64) -> asap_core::Sim {
        let params = WorkloadParams {
            threads,
            ops_per_thread: ops,
            seed: 111,
            key_space: 512,
            ..Default::default()
        };
        let programs: Vec<Box<dyn ThreadProgram>> = (0..threads)
            .map(|t| -> Box<dyn ThreadProgram> { Box::new(Memcached::new(t, &params)) })
            .collect();
        let mut sim = SimBuilder::new(SimConfig::paper(), ModelKind::Asap, Flavor::Release)
            .programs(programs)
            .build();
        let out = sim.run_to_completion();
        assert!(out.all_done);
        sim
    }

    #[test]
    fn memcached_completes() {
        let sim = run(2, 30);
        assert_eq!(sim.stats().ops_completed, 60);
    }

    #[test]
    fn memcached_chains_reachable() {
        let sim = run(1, 40);
        let pm = sim.pm();
        let mut items = 0;
        for b in 0..BUCKETS {
            let mut item = pm.read_u64(BUCKET_REGION + b * 64);
            let mut hops = 0;
            while item != 0 && hops < 100 {
                assert_ne!(pm.read_u64(item), 0, "item with zero key");
                item = pm.read_u64(item + 8);
                hops += 1;
                items += 1;
            }
            assert!(hops < 100, "cycle in chain");
        }
        assert!(items > 0);
    }
}
