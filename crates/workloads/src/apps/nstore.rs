//! Nstore: a PM-native DBMS (WHISPER suite).
//!
//! Modelled as a write-ahead-logging storage engine over per-thread
//! table partitions: each transaction appends an undo/redo record to the
//! thread's log (`ofence`), updates one to three table rows in place
//! (`ofence`), then persists a commit marker and issues `dfence` —
//! the classic WAL epoch chain. Partitioned tables mean almost no
//! cross-thread dependencies, matching Figure 2.

use crate::common::{fnv1a, init_once, WorkloadParams, GLOBALS_BASE, STATIC_BASE};
use asap_core::{BurstCtx, BurstStatus, ThreadProgram};
use asap_sim_core::{DetRng, ThreadId};

const TABLE_REGION: u64 = STATIC_BASE + 0x0700_0000;
const LOG_REGION: u64 = STATIC_BASE + 0x0800_0000;
const SHARED_ROWS_REGION: u64 = STATIC_BASE + 0x0900_0000;
const NSTORE_INIT_FLAG: u64 = GLOBALS_BASE + 0x800;

const ROWS_PER_PARTITION: u64 = 4096;
const ROW_BYTES: u64 = 128; // two lines per row
const LOG_SLOTS: u64 = 2048;
const SHARED_ROWS: u64 = 64;

/// Nstore transactional workload.
#[derive(Clone)]
pub struct Nstore {
    tid: usize,
    rng: DetRng,
    ops_left: u64,
    #[allow(dead_code)]
    params: WorkloadParams,
    log_pos: u64,
}

impl Nstore {
    /// Build the program for one thread.
    pub fn new(thread: usize, params: &WorkloadParams) -> Nstore {
        Nstore {
            tid: thread,
            rng: params.rng_for(thread),
            ops_left: params.ops_per_thread,
            params: params.clone(),
            log_pos: 0,
        }
    }

    fn row_addr(&self, row: u64) -> u64 {
        TABLE_REGION
            + self.tid as u64 * ROWS_PER_PARTITION * ROW_BYTES
            + (row % ROWS_PER_PARTITION) * ROW_BYTES
    }

    fn log_slot(&self) -> u64 {
        LOG_REGION + self.tid as u64 * LOG_SLOTS * 128 + (self.log_pos % LOG_SLOTS) * 128
    }

    fn txn(&mut self, ctx: &mut BurstCtx<'_>) {
        // 1. Log record: txn id + before-images (two lines).
        let slot = self.log_slot();
        self.log_pos += 1;
        ctx.store_u64(slot, self.log_pos);
        ctx.store_u64(slot + 64, self.rng.next_u64());
        ctx.ofence();

        // 2. Update 1–3 rows in the thread's partition.
        let nrows = self.rng.range_inclusive(1, 3);
        for _ in 0..nrows {
            let r = self.rng.below(ROWS_PER_PARTITION);
            let row = self.row_addr(r);
            ctx.load_u64(row); // read-modify-write
            ctx.store_u64(row, self.rng.next_u64());
            ctx.store_u64(row + 64, self.log_pos);
        }
        // Occasionally touch a globally shared row (catalog/stats table):
        // the rare cross-thread dependency WHISPER observed.
        if self.rng.chance(0.02) {
            let shared = SHARED_ROWS_REGION + self.rng.below(SHARED_ROWS) * 64;
            let v = ctx.load_u64(shared);
            ctx.store_u64(shared, v + 1);
        }
        ctx.ofence();

        // 3. Commit marker, then durability before replying.
        ctx.store_u64(slot + 8, 0xc0_4417); // committed tag
        ctx.ofence();
        ctx.dfence();
    }

    /// One WAL transaction whose row set is derived from `key` instead
    /// of the thread RNG: the open-loop traffic frontend replays request
    /// streams, so the same trace must touch the same rows regardless of
    /// arrival process or worker count. Same epoch chain as
    /// [`Nstore::txn`]: log record, `ofence`, 1–3 row updates, `ofence`,
    /// commit marker, `ofence`, `dfence`.
    pub(crate) fn serve_update(&mut self, ctx: &mut BurstCtx<'_>, key: u64) {
        let slot = self.log_slot();
        self.log_pos += 1;
        ctx.store_u64(slot, self.log_pos);
        ctx.store_u64(slot + 64, key ^ 0x4157_4157);
        ctx.ofence();

        let h = fnv1a(key);
        let nrows = 1 + h % 3;
        for i in 0..nrows {
            let r = fnv1a(key.wrapping_add(i * 0x9e37)) % ROWS_PER_PARTITION;
            let row = self.row_addr(r);
            ctx.load_u64(row); // read-modify-write
            ctx.store_u64(row, key.rotate_left(i as u32 + 1));
            ctx.store_u64(row + 64, self.log_pos);
        }
        // The rare cross-thread touch (catalog/stats table), keyed so a
        // replayed trace reproduces it exactly.
        if h.is_multiple_of(50) {
            let shared = SHARED_ROWS_REGION + (h / 50) % SHARED_ROWS * 64;
            let v = ctx.load_u64(shared);
            ctx.store_u64(shared, v + 1);
        }
        ctx.ofence();

        ctx.store_u64(slot + 8, 0xc0_4417); // committed tag
        ctx.ofence();
        ctx.dfence();
    }

    /// Key-derived read-only transaction: load the 1–3 rows the matching
    /// update would have written. No log record, no fences — reads are
    /// not persisted, mirroring a WAL engine's read path.
    pub(crate) fn serve_read(&mut self, ctx: &mut BurstCtx<'_>, key: u64) {
        let h = fnv1a(key);
        let nrows = 1 + h % 3;
        for i in 0..nrows {
            let r = fnv1a(key.wrapping_add(i * 0x9e37)) % ROWS_PER_PARTITION;
            let row = self.row_addr(r);
            ctx.load_u64(row);
            ctx.load_u64(row + 64);
        }
    }
}

impl ThreadProgram for Nstore {
    fn boxed_clone(&self) -> Option<Box<dyn ThreadProgram>> {
        Some(Box::new(self.clone()))
    }

    fn next_burst(&mut self, _tid: ThreadId, ctx: &mut BurstCtx<'_>) -> BurstStatus {
        init_once(ctx, NSTORE_INIT_FLAG, |_| {});
        if self.ops_left == 0 {
            ctx.dfence();
            return BurstStatus::Finished;
        }
        ctx.compute(self.params.think_cycles);
        self.txn(ctx);
        ctx.op_completed();
        self.ops_left -= 1;
        BurstStatus::Running
    }

    fn name(&self) -> &str {
        "nstore"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_core::{Flavor, ModelKind, SimBuilder};
    use asap_sim_core::SimConfig;

    fn run(threads: usize, ops: u64) -> asap_core::Sim {
        let params = WorkloadParams {
            threads,
            ops_per_thread: ops,
            seed: 81,
            ..Default::default()
        };
        let programs: Vec<Box<dyn ThreadProgram>> = (0..threads)
            .map(|t| -> Box<dyn ThreadProgram> { Box::new(Nstore::new(t, &params)) })
            .collect();
        let mut sim = SimBuilder::new(SimConfig::paper(), ModelKind::Asap, Flavor::Release)
            .programs(programs)
            .build();
        let out = sim.run_to_completion();
        assert!(out.all_done);
        sim
    }

    #[test]
    fn nstore_completes_txns() {
        let sim = run(2, 30);
        assert_eq!(sim.stats().ops_completed, 60);
        // WAL pattern: at least 3 epochs per txn.
        assert!(sim.stats().epochs_created >= 60 * 3);
    }

    #[test]
    fn nstore_has_low_cross_dependency_rate() {
        let sim = run(4, 25);
        let s = sim.stats();
        // Partitioned tables: dependencies should be rare relative to ops.
        assert!(
            s.inter_t_epoch_conflict < s.ops_completed,
            "nstore should have few cross deps ({} vs {} ops)",
            s.inter_t_epoch_conflict,
            s.ops_completed
        );
    }
}
