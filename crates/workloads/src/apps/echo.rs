//! Echo: a scalable persistent key-value store (WHISPER suite).
//!
//! Echo's design: worker threads append updates to *thread-local*
//! persistent logs and periodically merge batches into a shared master
//! index under a lock. We model exactly that: per-op local log append
//! (`ofence`-ordered), and every [`BATCH`] ops a locked master update.

use crate::common::{
    fnv1a, init_once, KeySampler, LockPhase, LockStep, SpinLock, WorkloadParams, GLOBALS_BASE,
    STATIC_BASE,
};
use asap_core::{BurstCtx, BurstStatus, ThreadProgram};
use asap_sim_core::{DetRng, ThreadId};

const LOCAL_LOG_REGION: u64 = STATIC_BASE + 0x0a00_0000;
pub(crate) const MASTER_REGION: u64 = STATIC_BASE + 0x0b00_0000;
pub(crate) const MASTER_LOCK: u64 = GLOBALS_BASE + 0x940; // own line: ticket + serving words
const ECHO_INIT_FLAG: u64 = GLOBALS_BASE + 0x908;

const LOG_SLOTS: u64 = 4096;
pub(crate) const MASTER_SLOTS: u64 = 1 << 12;
/// Local ops between master merges.
pub const BATCH: u64 = 8;

/// Echo KV-store workload.
#[derive(Clone)]
pub struct Echo {
    tid: usize,
    rng: DetRng,
    sampler: KeySampler,
    ops_left: u64,
    params: WorkloadParams,
    log_pos: u64,
    since_merge: u64,
    merge_phase: Option<LockPhase>,
    batch_keys: Vec<u64>,
}

impl Echo {
    /// Build the program for one thread.
    pub fn new(thread: usize, params: &WorkloadParams) -> Echo {
        Echo {
            tid: thread,
            rng: params.rng_for(thread),
            sampler: params.key_sampler(),
            ops_left: params.ops_per_thread,
            params: params.clone(),
            log_pos: 0,
            since_merge: 0,
            merge_phase: None,
            batch_keys: Vec::new(),
        }
    }

    fn log_slot(&self) -> u64 {
        LOCAL_LOG_REGION + self.tid as u64 * LOG_SLOTS * 128 + (self.log_pos % LOG_SLOTS) * 128
    }

    /// Append one update to the thread-local persistent log (the batch
    /// key is remembered for the next master merge). Shared with the
    /// open-loop traffic frontend.
    pub(crate) fn local_put(&mut self, ctx: &mut BurstCtx<'_>, key: u64) {
        let slot = self.log_slot();
        self.log_pos += 1;
        ctx.store_u64(slot, key);
        ctx.store_u64(slot + 8, key ^ 0xec40);
        if self.params.value_bytes > 48 {
            ctx.store_u64(slot + 64, key.rotate_left(7));
        }
        ctx.ofence();
        // Version bump publishing the entry locally.
        ctx.store_u64(slot + 16, self.log_pos);
        ctx.ofence();
        self.batch_keys.push(key);
    }

    /// Merge the batched keys into the shared master index (caller holds
    /// the master lock). Shared with the open-loop traffic frontend.
    pub(crate) fn master_merge(&mut self, ctx: &mut BurstCtx<'_>) {
        for &key in &self.batch_keys {
            let slot = MASTER_REGION + (fnv1a(key) % MASTER_SLOTS) * 64;
            ctx.store_u64(slot, key);
            ctx.store_u64(slot + 8, key ^ 0xec40);
        }
        ctx.ofence();
        self.batch_keys.clear();
    }
}

impl ThreadProgram for Echo {
    fn boxed_clone(&self) -> Option<Box<dyn ThreadProgram>> {
        Some(Box::new(self.clone()))
    }

    fn next_burst(&mut self, tid: ThreadId, ctx: &mut BurstCtx<'_>) -> BurstStatus {
        init_once(ctx, ECHO_INIT_FLAG, |_| {});

        if let Some(mut phase) = self.merge_phase.take() {
            let lock = SpinLock::at(MASTER_LOCK);
            match phase.step(lock, ctx, tid, 60) {
                LockStep::EnterCritical => {
                    self.master_merge(ctx);
                    self.merge_phase = Some(phase);
                }
                LockStep::StillAcquiring => self.merge_phase = Some(phase),
                LockStep::Released => {
                    ctx.dfence();
                    self.since_merge = 0;
                }
            }
            return BurstStatus::Running;
        }

        if self.ops_left == 0 {
            ctx.dfence();
            return BurstStatus::Finished;
        }
        ctx.compute(self.params.think_cycles);
        let key = self.sampler.sample(&mut self.rng);
        self.local_put(ctx, key);
        ctx.op_completed();
        self.ops_left -= 1;
        self.since_merge += 1;
        if self.since_merge >= BATCH {
            self.merge_phase = Some(LockPhase::start());
        }
        BurstStatus::Running
    }

    fn name(&self) -> &str {
        "echo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_core::{Flavor, ModelKind, SimBuilder};
    use asap_sim_core::SimConfig;

    fn run(threads: usize, ops: u64) -> asap_core::Sim {
        let params = WorkloadParams {
            threads,
            ops_per_thread: ops,
            seed: 91,
            ..Default::default()
        };
        let programs: Vec<Box<dyn ThreadProgram>> = (0..threads)
            .map(|t| -> Box<dyn ThreadProgram> { Box::new(Echo::new(t, &params)) })
            .collect();
        let mut sim = SimBuilder::new(SimConfig::paper(), ModelKind::Asap, Flavor::Release)
            .programs(programs)
            .build();
        let out = sim.run_to_completion();
        assert!(out.all_done);
        sim
    }

    #[test]
    fn echo_completes() {
        let sim = run(2, 40);
        assert_eq!(sim.stats().ops_completed, 80);
    }

    #[test]
    fn echo_merges_into_master() {
        let sim = run(2, 32);
        let pm = sim.pm();
        let mut filled = 0;
        for s in 0..MASTER_SLOTS {
            if pm.read_u64(MASTER_REGION + s * 64) != 0 {
                filled += 1;
            }
        }
        assert!(filled > 0, "master index never updated");
    }
}
