//! Extendible hashing: CCEH (FAST'19) and the Dash-EH variant (VLDB'20).
//!
//! Layout on persistent memory:
//!
//! * a fixed **directory** of segment pointers at a static address
//!   (2^DIR_BITS entries);
//! * **segments** of [`BUCKETS_PER_SEG`] one-line buckets; a bucket holds
//!   four `(key, value-ptr)` pairs (key 0 = empty);
//! * a one-line **segment header** holding the segment's local depth and
//!   split lock.
//!
//! CCEH inserts are lock-free: probe the target bucket (plus linear
//! probing over a small window), CAS the key slot, store the value
//! pointer, `ofence`, `dfence`. When the probe window is full the thread
//! takes the segment's split lock, rehashes into two fresh segments and
//! republishes directory entries with `ofence` ordering between the data
//! and pointer writes.
//!
//! Dash-EH replaces the slot CAS with per-bucket locks (acquire/release
//! annotated) and adds a fingerprint write per insert, giving it a
//! different — lock-shaped — cross-thread dependency profile, as in the
//! paper's Figure 2.

use crate::common::{
    fnv1a, init_once, lock_region, Arena, KeySampler, LockPhase, LockStep, SpinLock,
    WorkloadParams, GLOBALS_BASE, LOCK_STRIPES, STATIC_BASE,
};
use asap_core::{BurstCtx, BurstStatus, ThreadProgram};
use asap_sim_core::{DetRng, ThreadId};

const DIR_BITS: u32 = 6;
pub(crate) const DIR_ENTRIES: u64 = 1 << DIR_BITS;
/// Buckets per segment (each one cache line).
pub const BUCKETS_PER_SEG: u64 = 16;
pub(crate) const PAIRS_PER_BUCKET: u64 = 4;
const PROBE_WINDOW: u64 = 2;
const SEG_BYTES: u64 = 64 + BUCKETS_PER_SEG * 64; // header line + buckets

pub(crate) const EXT_DIR: u64 = STATIC_BASE; // directory array (segment pointers)

const EXT_INIT_FLAG: u64 = GLOBALS_BASE + 0x40;

fn dir_index(h: u64) -> u64 {
    h >> (64 - DIR_BITS)
}

fn bucket_index(h: u64) -> u64 {
    h % BUCKETS_PER_SEG
}

pub(crate) fn seg_header(seg: u64) -> u64 {
    seg
}

pub(crate) fn bucket_addr(seg: u64, b: u64) -> u64 {
    seg + 64 + (b % BUCKETS_PER_SEG) * 64
}

pub(crate) fn slot_addr(bucket: u64, s: u64) -> u64 {
    bucket + s * 16
}

/// What the program is currently doing (inserts span multiple bursts
/// when locks or splits are involved).
#[derive(Debug, Clone)]
enum Phase {
    Idle,
    /// Dash: waiting on a bucket lock for (key, bucket line).
    DashLocked {
        key: u64,
        lock: SpinLock,
        phase: LockPhase,
    },
    /// Splitting the segment behind directory slot `dir`.
    Split {
        key: u64,
        dir: u64,
        phase: LockPhase,
        lock: SpinLock,
    },
}

/// CCEH / Dash-EH insert-heavy workload.
#[derive(Clone)]
pub struct ExtHash {
    #[allow(dead_code)]
    tid: usize,
    rng: DetRng,
    sampler: KeySampler,
    arena: Arena,
    ops_left: u64,
    params: WorkloadParams,
    dash: bool,
    phase: Phase,
}

impl ExtHash {
    /// CCEH flavour (CAS-based inserts).
    pub fn new_cceh(thread: usize, params: &WorkloadParams) -> ExtHash {
        ExtHash {
            tid: thread,
            rng: params.rng_for(thread),
            sampler: params.key_sampler(),
            arena: Arena::for_thread(thread),
            ops_left: params.ops_per_thread,
            params: params.clone(),
            dash: false,
            phase: Phase::Idle,
        }
    }

    /// Dash-EH flavour (bucket locks + fingerprints).
    pub fn new_dash(thread: usize, params: &WorkloadParams) -> ExtHash {
        ExtHash {
            dash: true,
            ..ExtHash::new_cceh(thread, params)
        }
    }

    fn setup(ctx: &mut BurstCtx<'_>, arena: &mut Arena) {
        // Untimed: allocate the initial segments and fill the directory.
        for d in 0..DIR_ENTRIES {
            // Two directory entries share a segment initially (local
            // depth DIR_BITS-1) to make early splits happen.
            if d % 2 == 0 {
                let seg = arena.alloc(SEG_BYTES);
                ctx.poke_durable_u64(seg_header(seg), DIR_BITS as u64 - 1); // local depth
                ctx.poke_durable_u64(EXT_DIR + d * 8, seg);
                ctx.poke_durable_u64(EXT_DIR + (d + 1) * 8, seg);
            }
        }
    }

    fn next_key(&mut self) -> u64 {
        self.sampler.sample(&mut self.rng)
    }

    /// Write the value blob and return its address (counts as the value
    /// payload writes of a real insert).
    fn write_value(&mut self, ctx: &mut BurstCtx<'_>, key: u64) -> u64 {
        let blob = self.arena.alloc(self.params.value_bytes as u64);
        let lines = self.params.value_bytes.div_ceil(64);
        for l in 0..lines {
            ctx.store_u64(blob + l as u64 * 64, key ^ (l as u64) << 32);
        }
        blob
    }

    /// One CCEH-style insert attempt inside the current burst. Returns
    /// `Ok(())` on success or `Err(dir_index)` when the probe window was
    /// full and a split is needed.
    ///
    /// The release-persistency port is annotated at *segment*
    /// granularity (the race-free-code requirement of §IV-E): writers
    /// acquire the segment's sync word before probing and release it
    /// after publishing, which is what makes CCEH one of the
    /// high-cross-dependency workloads of Figure 2.
    fn try_insert(&mut self, ctx: &mut BurstCtx<'_>, key: u64) -> Result<(), u64> {
        let h = fnv1a(key);
        let dir = dir_index(h);
        let seg = ctx.load_u64(EXT_DIR + dir * 8);
        // Segment-granular acquire annotation (sync word in the header
        // line at +24).
        ctx.acquire_load(seg_header(seg) + 24);
        let b0 = bucket_index(h);
        for w in 0..PROBE_WINDOW {
            let bucket = bucket_addr(seg, b0 + w);
            for s in 0..PAIRS_PER_BUCKET {
                let slot = slot_addr(bucket, s);
                let cur = ctx.load_u64(slot);
                if cur == key {
                    // Update in place: persist new value blob, then
                    // republish the pointer. The pointer word shares its
                    // line with slots other threads CAS concurrently, so
                    // the publish must itself be an atomic RMW — a plain
                    // store would race (no synchronizes-with edge) and
                    // break strong persist atomicity under release
                    // persistency.
                    let blob = self.write_value(ctx, key);
                    ctx.ofence();
                    let old = ctx.peek_u64(slot + 8);
                    let _ = ctx.cas_u64(slot + 8, old, blob);
                    ctx.ofence();
                    ctx.release_store(seg_header(seg) + 24, h);
                    return Ok(());
                }
                if cur == 0 {
                    // Persist the value before publishing the key (the
                    // standard out-of-place insert ordering).
                    let blob = self.write_value(ctx, key);
                    ctx.ofence();
                    if ctx.cas_u64(slot, 0, key) {
                        let old = ctx.peek_u64(slot + 8);
                        let _ = ctx.cas_u64(slot + 8, old, blob);
                        ctx.ofence();
                        ctx.release_store(seg_header(seg) + 24, h);
                        return Ok(());
                    }
                    // Lost the race; fall through to the next slot.
                }
            }
        }
        Err(dir)
    }

    /// Rehash the segment behind `dir` into two fresh segments (runs
    /// under the segment split lock).
    fn split(&mut self, ctx: &mut BurstCtx<'_>, dir: u64) {
        let old = ctx.load_u64(EXT_DIR + dir * 8);
        let depth = ctx.load_u64(seg_header(old));
        if depth as u32 >= DIR_BITS {
            // Cannot split further with a fixed directory: steal the
            // oldest slot in the target bucket instead (bounded overwrite
            // keeps the workload running; real CCEH would double the
            // directory).
            return;
        }
        let s0 = self.arena.alloc(SEG_BYTES);
        let s1 = self.arena.alloc(SEG_BYTES);
        ctx.store_u64(seg_header(s0), depth + 1);
        ctx.store_u64(seg_header(s1), depth + 1);
        // Rehash every pair into the two new segments.
        for b in 0..BUCKETS_PER_SEG {
            for s in 0..PAIRS_PER_BUCKET {
                let slot = slot_addr(bucket_addr(old, b), s);
                let k = ctx.load_u64(slot);
                if k == 0 {
                    continue;
                }
                let v = ctx.load_u64(slot + 8);
                let h = fnv1a(k);
                // The split bit below the directory bits decides the side.
                let side = (dir_index(h)) & 1;
                let dst_seg = if side == 0 { s0 } else { s1 };
                let db = bucket_index(h);
                for w in 0..PROBE_WINDOW {
                    let dslot_base = bucket_addr(dst_seg, db + w);
                    let mut placed = false;
                    for ds in 0..PAIRS_PER_BUCKET {
                        let dslot = slot_addr(dslot_base, ds);
                        if ctx.load_u64(dslot) == 0 {
                            ctx.store_u64(dslot, k);
                            ctx.store_u64(dslot + 8, v);
                            placed = true;
                            break;
                        }
                    }
                    if placed {
                        break;
                    }
                }
            }
        }
        // Persist the new segments before publishing them.
        ctx.ofence();
        let pair_base = dir & !1;
        ctx.store_u64(EXT_DIR + pair_base * 8, s0);
        ctx.store_u64(EXT_DIR + (pair_base + 1) * 8, s1);
        ctx.ofence();
    }

    fn lookup(&mut self, ctx: &mut BurstCtx<'_>, key: u64) {
        let h = fnv1a(key);
        let seg = ctx.load_u64(EXT_DIR + dir_index(h) * 8);
        let b0 = bucket_index(h);
        'outer: for w in 0..PROBE_WINDOW {
            let bucket = bucket_addr(seg, b0 + w);
            for s in 0..PAIRS_PER_BUCKET {
                let slot = slot_addr(bucket, s);
                if ctx.load_u64(slot) == key {
                    ctx.load_u64(slot + 8);
                    break 'outer;
                }
            }
        }
    }

    fn seg_lock_for(&self, _ctx: &mut BurstCtx<'_>, dir: u64) -> SpinLock {
        // Striped split locks (one per directory slot pair).
        SpinLock::striped(lock_region(3), dir >> 1, LOCK_STRIPES)
    }

    /// Dash's striped bucket lock cell for a hashed key. Dash locks at
    /// bucket granularity; our stripe count matches the bucket-group
    /// count (not the key count), so concurrent writers genuinely
    /// contend — the Figure 2 dependency source for dash-eh.
    fn dash_lock(h: u64) -> SpinLock {
        SpinLock::striped(
            lock_region(4),
            dir_index(h) * BUCKETS_PER_SEG + bucket_index(h),
            256,
        )
    }
}

impl ThreadProgram for ExtHash {
    fn boxed_clone(&self) -> Option<Box<dyn ThreadProgram>> {
        Some(Box::new(self.clone()))
    }

    fn next_burst(&mut self, tid: ThreadId, ctx: &mut BurstCtx<'_>) -> BurstStatus {
        init_once(ctx, EXT_INIT_FLAG, |c| Self::setup(c, &mut self.arena));

        match std::mem::replace(&mut self.phase, Phase::Idle) {
            Phase::Idle => {}
            Phase::DashLocked {
                key,
                lock,
                mut phase,
            } => {
                match phase.step(lock, ctx, tid, 40) {
                    LockStep::EnterCritical => {
                        // Critical section in the same burst: slot insert
                        // plus Dash's fingerprint write.
                        if self.try_insert(ctx, key).is_ok() {
                            // Dash fingerprint: kept in the lock cell's
                            // ticket line (the bucket line is all slots).
                            let h = fnv1a(key);
                            ctx.store_u64(Self::dash_lock(h).addr() + 16, h & 0xff);
                            ctx.ofence();
                        }
                        // On Err the probe window was full: the bounded
                        // structure drops the insert (real Dash would
                        // split; CCEH mode exercises the split path).
                        self.phase = Phase::DashLocked { key, lock, phase };
                    }
                    LockStep::StillAcquiring => {
                        self.phase = Phase::DashLocked { key, lock, phase };
                    }
                    LockStep::Released => {
                        ctx.dfence();
                        ctx.op_completed();
                        self.ops_left -= 1;
                    }
                }
                return BurstStatus::Running;
            }
            Phase::Split {
                key,
                dir,
                mut phase,
                lock,
            } => {
                match phase.step(lock, ctx, tid, 60) {
                    LockStep::EnterCritical => {
                        // Holding the split lock: re-check (someone may
                        // have split already) and split.
                        if let Err(d) = self.try_insert(ctx, key) {
                            self.split(ctx, d);
                            // Retry inside the same critical section; if
                            // the window is still unlucky the bounded
                            // structure drops the insert.
                            let _ = self.try_insert(ctx, key);
                        }
                        self.phase = Phase::Split {
                            key,
                            dir,
                            phase,
                            lock,
                        };
                    }
                    LockStep::StillAcquiring => {
                        self.phase = Phase::Split {
                            key,
                            dir,
                            phase,
                            lock,
                        };
                    }
                    LockStep::Released => {
                        ctx.dfence();
                        ctx.op_completed();
                        self.ops_left -= 1;
                    }
                }
                return BurstStatus::Running;
            }
        }

        if self.ops_left == 0 {
            ctx.dfence();
            return BurstStatus::Finished;
        }

        ctx.compute(self.params.think_cycles);
        let key = self.next_key();
        let is_update = self.rng.chance(self.params.update_fraction);
        if !is_update {
            self.lookup(ctx, key);
            ctx.op_completed();
            self.ops_left -= 1;
            return BurstStatus::Running;
        }

        if self.dash {
            // Dash: take the striped bucket lock first.
            let h = fnv1a(key);
            let lock = Self::dash_lock(h);
            self.phase = Phase::DashLocked {
                key,
                lock,
                phase: LockPhase::start(),
            };
            return BurstStatus::Running;
        }

        // CCEH: lock-free attempt in this burst.
        match self.try_insert(ctx, key) {
            Ok(()) => {
                ctx.dfence();
                ctx.op_completed();
                self.ops_left -= 1;
            }
            Err(dir) => {
                let lock = self.seg_lock_for(ctx, dir);
                self.phase = Phase::Split {
                    key,
                    dir,
                    phase: LockPhase::start(),
                    lock,
                };
            }
        }
        BurstStatus::Running
    }

    fn name(&self) -> &str {
        if self.dash {
            "dash-eh"
        } else {
            "cceh"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asap_core::{Flavor, ModelKind, SimBuilder};
    use asap_sim_core::SimConfig;

    fn run(dash: bool, threads: usize, ops: u64) -> asap_core::Sim {
        let params = WorkloadParams {
            threads,
            ops_per_thread: ops,
            seed: 3,
            key_space: 256,
            ..Default::default()
        };
        let programs: Vec<Box<dyn ThreadProgram>> = (0..threads)
            .map(|t| -> Box<dyn ThreadProgram> {
                if dash {
                    Box::new(ExtHash::new_dash(t, &params))
                } else {
                    Box::new(ExtHash::new_cceh(t, &params))
                }
            })
            .collect();
        let mut sim = SimBuilder::new(SimConfig::paper(), ModelKind::Asap, Flavor::Release)
            .programs(programs)
            .with_journal()
            .build();
        let out = sim.run_to_completion();
        assert!(out.all_done);
        sim
    }

    #[test]
    fn cceh_single_thread_completes() {
        let sim = run(false, 1, 40);
        assert_eq!(sim.stats().ops_completed, 40);
        assert!(sim.stats().stores > 0);
    }

    #[test]
    fn cceh_inserted_keys_are_findable() {
        // Insert a fixed key set through the structure, then verify via
        // the functional image.
        let params = WorkloadParams {
            threads: 1,
            ops_per_thread: 30,
            seed: 5,
            key_space: 64,
            update_fraction: 1.0,
            ..Default::default()
        };
        let programs: Vec<Box<dyn ThreadProgram>> = vec![Box::new(ExtHash::new_cceh(0, &params))];
        let mut sim = SimBuilder::new(SimConfig::paper(), ModelKind::Asap, Flavor::Release)
            .programs(programs)
            .build();
        sim.run_to_completion();
        // Count non-empty slots across the directory's segments.
        let pm = sim.pm();
        let mut found = 0;
        let mut seen_segs = std::collections::HashSet::new();
        for d in 0..DIR_ENTRIES {
            let seg = pm.read_u64(EXT_DIR + d * 8);
            if !seen_segs.insert(seg) {
                continue;
            }
            for b in 0..BUCKETS_PER_SEG {
                for s in 0..PAIRS_PER_BUCKET {
                    let k = pm.read_u64(slot_addr(bucket_addr(seg, b), s));
                    if k != 0 {
                        found += 1;
                    }
                }
            }
        }
        assert!(found > 0, "no keys stored");
        assert!(found <= 30);
    }

    #[test]
    fn cceh_multithreaded_with_crashes() {
        let sim = run(false, 4, 25);
        assert_eq!(sim.stats().ops_completed, 100);
    }

    #[test]
    fn dash_uses_locks_and_completes() {
        let sim = run(true, 2, 20);
        assert_eq!(sim.stats().ops_completed, 40);
    }

    #[test]
    fn cceh_crash_consistent() {
        let params = WorkloadParams {
            threads: 2,
            ops_per_thread: 60,
            seed: 9,
            key_space: 128,
            ..Default::default()
        };
        for at in [5_000u64, 20_000, 80_000] {
            let programs: Vec<Box<dyn ThreadProgram>> = (0..2)
                .map(|t| -> Box<dyn ThreadProgram> { Box::new(ExtHash::new_cceh(t, &params)) })
                .collect();
            let mut sim = SimBuilder::new(SimConfig::paper(), ModelKind::Asap, Flavor::Release)
                .programs(programs)
                .with_journal()
                .build();
            let r = sim
                .crash_at(asap_sim_core::Cycle(at))
                .expect("journal enabled");
            assert!(r.is_consistent(), "crash at {at}: {:?}", r.violations);
        }
    }
}
