//! # asap — a reproduction of *ASAP: A Speculative Approach to Persistence* (HPCA 2022)
//!
//! This facade crate re-exports the whole workspace so examples and
//! downstream users can depend on a single crate:
//!
//! * [`sim`] — discrete-event engine, configuration (Table II), stats
//!   (Table VI names), deterministic RNG.
//! * [`pm`] — functional persistent-memory space, MC interleaving,
//!   allocator, timing-accurate NVM image and write journal.
//! * [`cache`] — MESI private caches, directory LLC, write-back buffer,
//!   counting Bloom filter.
//! * [`mc`] — memory controllers: WPQ, NVM timing, recovery tables
//!   (undo/delay records), NACK backpressure, ADR crash drain.
//! * [`model`] — the persistency hardware models: Intel-like baseline,
//!   HOPS, **ASAP** (the paper's contribution) and eADR/BBB, in both
//!   epoch- and release-persistency flavours.
//! * [`workloads`] — the Table III workload suite re-implemented as
//!   instrumented persistent data structures.
//! * [`analysis`] — static analysis over the workload IR: the
//!   `persist_lint` flush/fence-discipline rules and the driver for the
//!   happens-before persist-race detector.
//! * [`harness`] — experiment drivers reproducing every figure and table
//!   in the paper's evaluation.
//!
//! # Quickstart
//!
//! ```
//! use asap::harness::{run_once, RunSpec};
//! use asap::sim::{Flavor, ModelKind, SimConfig};
//! use asap::workloads::WorkloadKind;
//!
//! let spec = RunSpec {
//!     config: SimConfig::paper(),
//!     model: ModelKind::Asap,
//!     flavor: Flavor::Release,
//!     workload: WorkloadKind::Queue,
//!     ops_per_thread: 50,
//!     seed: 1,
//! };
//! let outcome = run_once(&spec);
//! assert!(outcome.stats.ops_completed > 0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use asap_analysis as analysis;
pub use asap_cache_sim as cache;
pub use asap_core as model;
pub use asap_harness as harness;
pub use asap_memctrl as mc;
pub use asap_pm_mem as pm;
pub use asap_sim_core as sim;
pub use asap_workloads as workloads;
