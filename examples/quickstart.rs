//! Quickstart: simulate a persistent workload under ASAP and print the
//! gem5-style statistics (Table VI names).
//!
//! ```text
//! cargo run --example quickstart
//! ```

use asap::harness::{run_once, RunSpec};
use asap::sim::{Flavor, ModelKind, SimConfig};
use asap::workloads::WorkloadKind;

fn main() {
    // The paper's Table II machine: 4 cores, 2 memory controllers,
    // Optane-like persistent memory.
    let spec = RunSpec {
        config: SimConfig::paper(),
        model: ModelKind::Asap,
        flavor: Flavor::Release,
        workload: WorkloadKind::Cceh,
        ops_per_thread: 200,
        seed: 42,
    };

    println!(
        "simulating {} under {}_{} on {} cores / {} MCs...\n",
        spec.workload, spec.model, spec.flavor, spec.config.num_cores, spec.config.num_mcs
    );

    let out = run_once(&spec);

    println!(
        "finished in {} simulated cycles ({} ns)",
        out.cycles,
        out.cycles / 2
    );
    println!("logical operations completed: {}", out.ops);
    println!(
        "throughput: {:.1} ops/us\n",
        out.ops as f64 / (out.cycles as f64 / 2000.0)
    );
    println!("--- stats.txt ---");
    print!("{}", out.stats.snapshot().to_stats_txt());
}
