//! The paper's Figure 5 write-collision scenario, step by step.
//!
//! Three threads write the same address A (initially 0). Thread 3's
//! A=3 reaches the memory controller first (early), then thread 2's A=2
//! (also early, but *older* in coherence order). Naive speculation would
//! leave memory holding 2 and lose the recoverable value 0; ASAP's
//! recovery table parks the colliding write in a *delay record* and keeps
//! a single undo record with the safe value.
//!
//! ```text
//! cargo run --example write_collision
//! ```

use asap::mc::{FlushOutcome, FlushPacket, MemController};
use asap::pm::NvmImage;
use asap::sim::{Cycle, EpochId, LineAddr, McId, SimConfig, Stats, ThreadId};

fn pkt(val: u8, seq: u64, thread: usize, ts: u64, early: bool) -> FlushPacket {
    FlushPacket {
        line: LineAddr::containing(0x40),
        data: [val; 64],
        seq,
        epoch: EpochId::new(ThreadId(thread), ts),
        early,
    }
}

fn show(step: &str, mc: &MemController, nvm: &NvmImage) {
    let line = LineAddr::containing(0x40);
    let idx = mc.line_idx(line);
    println!(
        "{step:<46} | A = {} | undo: {} | delay records: {}",
        nvm.line(line).data[0],
        if idx.is_some_and(|i| mc.rt().has_undo(i)) {
            format!("safe={}", {
                // records() exposes the undo's safe data for inspection
                let recs = mc.rt().records();
                recs.iter()
                    .find_map(|r| match r {
                        asap::mc::RtRecord::Undo { safe, .. } => Some(safe.data[0].to_string()),
                        _ => None,
                    })
                    .unwrap_or_default()
            })
        } else {
            "none".into()
        },
        idx.map_or(0, |i| mc.rt().delay_count(i)),
    );
}

fn main() {
    let cfg = SimConfig::paper();
    let mut mc = MemController::new(McId(0), &cfg);
    let mut nvm = NvmImage::new();
    let mut stats = Stats::new();

    println!("Figure 5: write collision at one address (A = 0 initially)\n");
    show("initial state", &mc, &nvm);

    // T3's A=3 (newest write) arrives first, early.
    let out = mc.receive_flush(Cycle(0), &pkt(3, 30, 3, 1, true), &mut nvm, &mut stats);
    assert!(matches!(out, FlushOutcome::Accepted { .. }));
    show("T3's early A=3 arrives (speculative persist)", &mc, &nvm);

    // T2's A=2 (older in coherence order) arrives second, early.
    let out = mc.receive_flush(Cycle(10), &pkt(2, 20, 2, 1, true), &mut nvm, &mut stats);
    assert!(matches!(out, FlushOutcome::Accepted { .. }));
    show("T2's early A=2 arrives (write collision!)", &mc, &nvm);

    // Crash now: memory must recover to A=0. Replay the same two flushes
    // against a fresh controller + media image and cut the power.
    {
        let mut crashed = NvmImage::new();
        let mut mc_copy_stats = Stats::new();
        let mut mc_copy = MemController::new(McId(0), &cfg);
        mc_copy.receive_flush(
            Cycle(0),
            &pkt(3, 30, 3, 1, true),
            &mut crashed,
            &mut mc_copy_stats,
        );
        mc_copy.receive_flush(
            Cycle(10),
            &pkt(2, 20, 2, 1, true),
            &mut crashed,
            &mut mc_copy_stats,
        );
        mc_copy.crash(&mut crashed);
        println!(
            "{:<46} | A = {} (the initial value — nothing was lost)",
            "…if power failed here: undo applied",
            crashed.line(LineAddr::containing(0x40)).data[0]
        );
        assert_eq!(crashed.line(LineAddr::containing(0x40)).data[0], 0);
    }

    // No crash: epochs commit in dependency order (T2's epoch first).
    mc.commit_epoch(
        Cycle(20),
        EpochId::new(ThreadId(2), 1),
        &mut nvm,
        &mut stats,
    );
    show("T2's epoch commits (delay folds into undo)", &mc, &nvm);

    mc.commit_epoch(
        Cycle(30),
        EpochId::new(ThreadId(3), 1),
        &mut nvm,
        &mut stats,
    );
    show("T3's epoch commits (undo deleted)", &mc, &nvm);

    assert_eq!(nvm.line(LineAddr::containing(0x40)).data[0], 3);
    println!(
        "\nfinal memory: A = 3 — the newest value, with every intermediate state recoverable."
    );
}
