//! Core-count scaling (the paper's Figure 10, in miniature).
//!
//! Sweeps 1/2/4/8 cores on the P-ART workload and prints throughput for
//! HOPS and ASAP, normalized to single-thread HOPS. ASAP should scale
//! better because eager flushing removes the cross-thread flushing stalls
//! that pile up as cores are added.
//!
//! ```text
//! cargo run --release --example scaling
//! ```

use asap::harness::{run_once, RunSpec};
use asap::sim::{Flavor, ModelKind, SimConfig};
use asap::workloads::WorkloadKind;

fn throughput(model: ModelKind, threads: usize) -> f64 {
    let out = run_once(&RunSpec {
        config: SimConfig::builder()
            .cores(threads)
            .build()
            .expect("valid config"),
        model,
        flavor: Flavor::Release,
        workload: WorkloadKind::PArt,
        ops_per_thread: 120,
        seed: 11,
    });
    out.ops as f64 / out.cycles as f64
}

fn main() {
    println!("P-ART inserts, 2 MCs, release persistency\n");
    println!("{:>7} {:>12} {:>12}", "threads", "HOPS", "ASAP");
    let base = throughput(ModelKind::Hops, 1);
    for threads in [1usize, 2, 4, 8] {
        let h = throughput(ModelKind::Hops, threads) / base;
        let a = throughput(ModelKind::Asap, threads) / base;
        println!("{threads:>7} {h:>11.2}x {a:>11.2}x");
    }
    println!("\n(speedup over 1-thread HOPS; the ASAP column should pull away with more threads)");
}
