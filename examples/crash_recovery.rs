//! Crash & recovery demonstration: the heart of ASAP.
//!
//! Two threads hammer a shared persistent structure under eager flushing;
//! we cut the power at an arbitrary instant. The memory controllers drain
//! their WPQs (ADR), write the undo records back to media, and drop the
//! delay records (§V-E). The crash oracle then machine-checks Theorem 2:
//! the recovered image must be ordering-consistent with the write journal
//! and the epoch dependency DAG.
//!
//! ```text
//! cargo run --example crash_recovery
//! ```

use asap::model::ops::{BurstCtx, BurstStatus, ThreadProgram};
use asap::model::SimBuilder;
use asap::sim::{Cycle, Flavor, ModelKind, SimConfig, ThreadId};

/// A bank-transfer-style program: debit one account, fence, credit the
/// other — ordering matters, atomicity is built from it.
struct Transfers {
    rounds: u64,
    accounts: u64,
    done: u64,
}

impl ThreadProgram for Transfers {
    fn next_burst(&mut self, t: ThreadId, ctx: &mut BurstCtx<'_>) -> BurstStatus {
        if self.done >= self.rounds {
            ctx.dfence();
            return BurstStatus::Finished;
        }
        let base = 0x10_0000 + t.0 as u64 * 0x10_0000;
        let from = base + (self.done % self.accounts) * 64;
        let to = base + ((self.done + 1) % self.accounts) * 64;
        // Log record first (so recovery can tell what was in flight)...
        let log = base + 0x8_0000 + (self.done % 512) * 64;
        ctx.store_u64(log, self.done << 8 | t.0 as u64);
        ctx.ofence();
        // ...then the transfer, ordered debit-before-credit.
        let a = ctx.load_u64(from);
        ctx.store_u64(from, a.wrapping_sub(1));
        ctx.ofence();
        let b = ctx.load_u64(to);
        ctx.store_u64(to, b.wrapping_add(1));
        ctx.ofence();
        self.done += 1;
        ctx.op_completed();
        BurstStatus::Running
    }

    fn name(&self) -> &str {
        "transfers"
    }
}

fn main() {
    for crash_at in [2_000u64, 10_000, 50_000, 250_000] {
        let mut sim = SimBuilder::new(SimConfig::paper(), ModelKind::Asap, Flavor::Release)
            .program(Box::new(Transfers {
                rounds: 500,
                accounts: 64,
                done: 0,
            }))
            .program(Box::new(Transfers {
                rounds: 500,
                accounts: 64,
                done: 0,
            }))
            .with_journal()
            .build();

        let report = sim.crash_at(Cycle(crash_at)).expect("journal enabled");

        println!("power failure at {crash_at} cycles:");
        println!("  undo records applied : {}", report.undo_records_applied);
        println!("  lines checked        : {}", report.lines_checked);
        println!("  epochs visible       : {}", report.epochs_visible);
        println!("  epochs committed     : {}", report.epochs_committed);
        if report.is_consistent() {
            println!("  recovered state      : CONSISTENT (Theorem 2 holds)\n");
        } else {
            println!("  recovered state      : VIOLATIONS:");
            for v in &report.violations {
                println!("    - {v}");
            }
            std::process::exit(1);
        }
    }
    println!("all crash points recovered consistently.");
}
