//! Model shoot-out on a concurrent persistent hash table (CCEH).
//!
//! Runs the same insert-heavy CCEH workload under all six models of the
//! paper's Figure 8 and prints runtimes and speedups over the Intel-like
//! baseline.
//!
//! ```text
//! cargo run --release --example concurrent_hash
//! ```

use asap::harness::{run_once, RunSpec};
use asap::sim::{Flavor, ModelKind, SimConfig};
use asap::workloads::WorkloadKind;

fn main() {
    let models = [
        ("baseline", ModelKind::Baseline, Flavor::Release),
        ("hops_ep", ModelKind::Hops, Flavor::Epoch),
        ("hops_rp", ModelKind::Hops, Flavor::Release),
        ("asap_ep", ModelKind::Asap, Flavor::Epoch),
        ("asap_rp", ModelKind::Asap, Flavor::Release),
        ("bbb    ", ModelKind::Bbb, Flavor::Release),
        ("eadr   ", ModelKind::Eadr, Flavor::Release),
    ];

    let mut base_cycles = 0u64;
    println!("CCEH, 4 threads, 150 inserts/thread, 2 MCs\n");
    println!(
        "{:<10} {:>12} {:>9} {:>10} {:>10}",
        "model", "cycles", "speedup", "crossDeps", "nvmWrites"
    );
    for (name, model, flavor) in models {
        let out = run_once(&RunSpec {
            config: SimConfig::paper(),
            model,
            flavor,
            workload: WorkloadKind::Cceh,
            ops_per_thread: 150,
            seed: 7,
        });
        if base_cycles == 0 {
            base_cycles = out.cycles;
        }
        println!(
            "{:<10} {:>12} {:>8.2}x {:>10} {:>10}",
            name,
            out.cycles,
            base_cycles as f64 / out.cycles as f64,
            out.stats.inter_t_epoch_conflict,
            out.stats.nvm_writes,
        );
    }
    println!("\n(the paper's Figure 8 shape: baseline slowest, ASAP within a few % of eADR)");
}
