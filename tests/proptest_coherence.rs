//! Randomized MESI conformance: the coherence hub is exercised with
//! random access sequences and compared against a reference protocol
//! state machine. The persistency results hang off two hub-reported
//! signals — `dirty_supplier` (who had the line modified) and
//! `invalidated` (which sharers a write upgrade displaced) — so those are
//! what the reference model checks.
//!
//! Sequences come from the workspace's own [`DetRng`], seeded per case,
//! so failures are reproducible from the printed case number.

use asap::cache::CoherenceHub;
use asap::sim::{DetRng, LineAddr, SimConfig, ThreadId};
use std::collections::HashMap;

/// Reference directory state per line.
#[derive(Debug, Clone, PartialEq)]
enum Ref {
    Invalid,
    /// Exclusive-or-modified at one core.
    Owned {
        owner: usize,
        dirty: bool,
    },
    Shared(Vec<usize>),
}

#[derive(Debug, Clone, Copy)]
struct Access {
    thread: usize,
    line: u64,
    write: bool,
}

fn accesses(rng: &mut DetRng) -> Vec<Access> {
    let n = rng.index(119) + 1;
    (0..n)
        .map(|_| Access {
            thread: rng.index(4),
            line: rng.below(12),
            write: rng.chance(0.5),
        })
        .collect()
}

#[test]
fn hub_matches_reference_protocol() {
    for case in 0..128u64 {
        let mut rng = DetRng::seed(0xC0DE ^ (1 << 32) ^ case);
        let seq = accesses(&mut rng);
        let cfg = SimConfig::paper();
        let mut hub = CoherenceHub::new(&cfg);
        let mut reference: HashMap<u64, Ref> = HashMap::new();

        for a in seq {
            let line = LineAddr::containing(a.line * 64);
            let out = hub.access(ThreadId(a.thread), line, a.write);
            let state = reference.entry(a.line).or_insert(Ref::Invalid);

            // 1. dirty_supplier must be exactly the remote dirty owner.
            let expect_supplier = match &*state {
                Ref::Owned { owner, dirty: true } if *owner != a.thread => Some(*owner),
                _ => None,
            };
            assert_eq!(
                out.dirty_supplier.map(|t| t.0),
                expect_supplier,
                "case {case}: dirty_supplier mismatch on {a:?} (ref {state:?})"
            );

            // 2. A write upgrade must invalidate every other sharer /
            //    remote owner (modulo private-cache capacity evictions,
            //    which can only *shrink* the set the hub reports).
            if a.write {
                let expect: Vec<usize> = match &*state {
                    Ref::Owned { owner, .. } if *owner != a.thread => vec![*owner],
                    Ref::Shared(s) => s.iter().copied().filter(|&t| t != a.thread).collect(),
                    _ => vec![],
                };
                let mut got: Vec<usize> = out.invalidated.iter().map(|t| t.0).collect();
                got.sort_unstable();
                let mut want = expect.clone();
                want.sort_unstable();
                assert_eq!(got, want, "case {case}: invalidation set mismatch on {a:?}");
            }

            // 3. Latency is one of the modelled levels.
            let l = out.latency;
            assert!(
                l == cfg.l1_latency
                    || l == cfg.l2_latency
                    || l == cfg.llc_latency
                    || l == cfg.llc_latency + cfg.c2c_latency,
                "case {case}: unexpected latency {l} on {a:?}"
            );

            // Advance the reference state machine.
            *state = if a.write {
                Ref::Owned {
                    owner: a.thread,
                    dirty: true,
                }
            } else {
                match state.clone() {
                    Ref::Invalid => Ref::Owned {
                        owner: a.thread,
                        dirty: false,
                    },
                    Ref::Owned { owner, .. } if owner == a.thread => state.clone(),
                    Ref::Owned { owner, .. } => Ref::Shared(vec![owner, a.thread]),
                    Ref::Shared(mut s) => {
                        if !s.contains(&a.thread) {
                            s.push(a.thread);
                        }
                        Ref::Shared(s)
                    }
                }
            };

            // 4. Hub-side dirtiness agrees with the reference.
            let ref_dirty = matches!(&*state, Ref::Owned { dirty: true, .. });
            assert_eq!(
                hub.is_dirty_anywhere(line),
                ref_dirty,
                "case {case}: dirtiness mismatch after {a:?}"
            );
        }
    }
}

/// Repeated single-thread access never involves other cores.
#[test]
fn private_streams_stay_private() {
    for case in 0..128u64 {
        let mut rng = DetRng::seed(0xC0DE ^ (2 << 32) ^ case);
        let n = rng.index(63) + 1;
        let lines: Vec<u64> = (0..n).map(|_| rng.below(64)).collect();
        let cfg = SimConfig::paper();
        let mut hub = CoherenceHub::new(&cfg);
        for (i, &l) in lines.iter().enumerate() {
            let out = hub.access(ThreadId(0), LineAddr::containing(l * 64), i % 2 == 0);
            assert_eq!(out.dirty_supplier, None, "case {case}");
            assert!(out.invalidated.is_empty(), "case {case}");
        }
    }
}
