//! Cross-crate invariants that must hold regardless of the persistency
//! model: functional equivalence, performance ordering, and accounting
//! identities.

use asap::harness::{run_once, RunSpec};
use asap::sim::{Flavor, ModelKind, SimConfig};
use asap::workloads::WorkloadKind;

fn spec(model: ModelKind, w: WorkloadKind, threads: usize, ops: u64) -> RunSpec {
    RunSpec {
        config: SimConfig::builder()
            .cores(threads)
            .build()
            .expect("valid config"),
        model,
        flavor: Flavor::Release,
        workload: w,
        ops_per_thread: ops,
        seed: 77,
    }
}

/// Single-thread runs are functionally deterministic: every model must
/// complete the same logical work (the persistency hardware may reorder
/// persists, never architectural results).
#[test]
fn single_thread_ops_identical_across_models() {
    for w in [
        WorkloadKind::Cceh,
        WorkloadKind::FastFair,
        WorkloadKind::Nstore,
    ] {
        let counts: Vec<u64> = [
            ModelKind::Baseline,
            ModelKind::Hops,
            ModelKind::Asap,
            ModelKind::Eadr,
        ]
        .iter()
        .map(|&m| run_once(&spec(m, w, 1, 30)).ops)
        .collect();
        assert!(
            counts.windows(2).all(|p| p[0] == p[1]),
            "{w}: op counts diverge across models: {counts:?}"
        );
    }
}

/// The paper's headline ordering must hold on every workload:
/// eADR <= ASAP (cycles) within a small tolerance. Lock-serialized
/// workloads (vacation) can show a few percent of hand-off phase noise —
/// the spinners' backoff windows align differently when the critical
/// sections end at different instants — so a 10% margin is allowed.
#[test]
fn eadr_is_the_lower_bound_everywhere() {
    for w in WorkloadKind::all() {
        let asap = run_once(&spec(ModelKind::Asap, w, 2, 25)).cycles;
        let eadr = run_once(&spec(ModelKind::Eadr, w, 2, 25)).cycles;
        assert!(
            eadr as f64 <= asap as f64 * 1.10,
            "{w}: eADR ({eadr}) more than 10% slower than ASAP ({asap})"
        );
    }
}

/// ASAP must beat the baseline on the concurrent index structures — the
/// paper's headline case.
#[test]
fn asap_beats_baseline_on_concurrent_structures() {
    for w in [
        WorkloadKind::Cceh,
        WorkloadKind::PClht,
        WorkloadKind::DashLh,
        WorkloadKind::Queue,
        WorkloadKind::FastFair,
    ] {
        let base = run_once(&spec(ModelKind::Baseline, w, 4, 40)).cycles;
        let asap = run_once(&spec(ModelKind::Asap, w, 4, 40)).cycles;
        assert!(
            asap < base,
            "{w}: ASAP ({asap}) not faster than baseline ({base})"
        );
    }
}

/// Write-count accounting: media writes can never exceed journal-issued
/// stores (coalescing only reduces), and every model persists a similar
/// amount of data for the same work.
#[test]
fn media_writes_bounded_by_stores() {
    for m in [ModelKind::Baseline, ModelKind::Hops, ModelKind::Asap] {
        let out = run_once(&spec(m, WorkloadKind::Echo, 2, 40));
        assert!(out.media_writes > 0, "{m}: no media writes");
        assert!(
            out.media_writes <= out.stats.stores,
            "{m}: media writes ({}) exceed stores ({})",
            out.media_writes,
            out.stats.stores
        );
    }
}

/// ASAP-specific identities: undo records come only from early flushes,
/// and commits clean every one of them by the end of a successful run.
#[test]
fn asap_record_identities() {
    let out = run_once(&spec(ModelKind::Asap, WorkloadKind::PClht, 4, 40));
    let s = &out.stats;
    assert!(
        s.total_undo <= s.tot_spec_writes,
        "undo records need early flushes"
    );
    assert!(s.total_delay <= s.tot_spec_writes);
    // Each undo-creating early flush reads the old value first.
    assert!(s.nvm_reads >= s.total_undo);
    assert!(out.rt_max_occupancy <= SimConfig::paper().rt_entries);
}

/// HOPS-specific identities: no speculation machinery engages.
#[test]
fn hops_never_speculates() {
    let out = run_once(&spec(ModelKind::Hops, WorkloadKind::Cceh, 4, 40));
    assert_eq!(out.stats.tot_spec_writes, 0);
    assert_eq!(out.stats.total_undo, 0);
    assert_eq!(out.stats.nacks, 0);
    assert_eq!(out.stats.commit_msgs, 0);
    assert_eq!(out.rt_max_occupancy, 0);
}

/// Baseline-specific identities: no buffering at all.
#[test]
fn baseline_has_no_persist_buffers() {
    let out = run_once(&spec(ModelKind::Baseline, WorkloadKind::Heap, 2, 30));
    assert_eq!(out.stats.entries_inserted, 0);
    assert_eq!(out.stats.cycles_blocked, 0);
    assert!(out.stats.ofence_stalled + out.stats.dfence_stalled > 0);
}

/// Runs are bit-deterministic: same spec, same cycle count, same stats.
#[test]
fn determinism_across_repeats() {
    for m in [ModelKind::Asap, ModelKind::Hops] {
        let a = run_once(&spec(m, WorkloadKind::Skiplist, 3, 25));
        let b = run_once(&spec(m, WorkloadKind::Skiplist, 3, 25));
        assert_eq!(a.cycles, b.cycles, "{m} nondeterministic");
        assert_eq!(a.media_writes, b.media_writes);
        assert_eq!(
            a.stats.inter_t_epoch_conflict,
            b.stats.inter_t_epoch_conflict
        );
    }
}

/// Seeds actually change the run (the RNG is plumbed through).
#[test]
fn seed_changes_runs() {
    let mut s1 = spec(ModelKind::Asap, WorkloadKind::Cceh, 2, 40);
    let mut s2 = s1.clone();
    s1.seed = 1;
    s2.seed = 2;
    let a = run_once(&s1);
    let b = run_once(&s2);
    assert_ne!(
        (a.cycles, a.media_writes),
        (b.cycles, b.media_writes),
        "different seeds should differ"
    );
}
