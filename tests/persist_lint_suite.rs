//! Workspace-level pin of the static analysis layer: the persist lint
//! over all 14 Table III workloads matches the golden report fixture,
//! stays free of unwaived findings, and the happens-before race
//! detector finds the whole suite clean.
//!
//! Regenerate the fixture after an intentional workload or rule change:
//!
//! ```text
//! cargo run -p asap-harness --bin persist_lint -- --all-workloads \
//!     > tests/fixtures/lint_golden.txt
//! ```

use asap::analysis::driver::{lint_all_workloads, race_check_workload, AnalysisParams};
use asap::workloads::WorkloadKind;

#[test]
fn lint_report_matches_golden_fixture() {
    let run = lint_all_workloads(&AnalysisParams::default());
    let golden = include_str!("fixtures/lint_golden.txt");
    let text = run.to_text();
    assert!(
        text == golden,
        "lint report drifted from tests/fixtures/lint_golden.txt — if the \
         change is intentional, regenerate it (see module docs).\n\
         --- got ---\n{text}\n--- expected ---\n{golden}"
    );
}

#[test]
fn suite_has_no_unwaived_findings() {
    let run = lint_all_workloads(&AnalysisParams::default());
    assert_eq!(run.reports.len(), 14);
    assert!(!run.has_findings(), "unwaived findings:\n{}", run.to_text());
    // Waivers stay scoped: at least one workload needs none.
    assert!(run.reports.iter().any(|r| r.waived.is_empty()));
}

#[test]
fn suite_is_persist_race_free() {
    let p = AnalysisParams::default();
    for kind in WorkloadKind::all() {
        let report = race_check_workload(kind, &p);
        assert!(!report.cycle, "{kind}: dependency cycle");
        assert!(
            report.is_clean(),
            "{kind}: unordered persists: {:?}",
            report.races
        );
    }
}
