//! Observability-layer integration tests: the Chrome trace sink, the
//! time-series sampler and — most importantly — the invariant that
//! attaching either changes *nothing* about the simulation itself.
//!
//! The golden fixture pins the exact trace bytes of a small
//! deterministic run. Regenerate after a deliberate modelling or
//! trace-format change with:
//! ```text
//! TRACE_GOLDEN_PRINT=1 cargo test --test trace_observability -- --nocapture
//! ```

use asap::model::{Flavor, ModelKind, SimBuilder};
use asap::sim::{ChromeTracer, Cycle, SharedBuf, SimConfig};
use asap::workloads::{make_workload, WorkloadKind, WorkloadParams};

fn small_config() -> SimConfig {
    SimConfig::builder().cores(2).build().expect("valid config")
}

fn small_builder() -> SimBuilder {
    let params = WorkloadParams {
        threads: 2,
        ops_per_thread: 8,
        seed: 11,
        ..Default::default()
    };
    SimBuilder::new(small_config(), ModelKind::Asap, Flavor::Release)
        .programs(make_workload(WorkloadKind::Queue, &params))
}

/// Run the pinned small workload with a [`ChromeTracer`] attached and
/// return the complete trace bytes (the sim is dropped so the sink is
/// finalized — closing `]` written).
fn traced_run() -> String {
    let buf = SharedBuf::default();
    let mut sim = small_builder()
        .tracer(Box::new(ChromeTracer::new(Box::new(buf.clone()))))
        .build();
    let out = sim.run_to_completion();
    assert!(out.all_done);
    drop(sim);
    buf.contents_string()
}

#[test]
fn chrome_trace_matches_golden_fixture() {
    let got = traced_run();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/trace_golden.json"
    );
    if std::env::var("TRACE_GOLDEN_PRINT").is_ok() {
        std::fs::write(path, &got).expect("write regenerated fixture");
        println!("regenerated {path} ({} bytes)", got.len());
        return;
    }
    let want = std::fs::read_to_string(path).expect("committed trace fixture");
    assert_eq!(
        got, want,
        "trace output diverged from tests/fixtures/trace_golden.json; \
         if the change is deliberate, regenerate with TRACE_GOLDEN_PRINT=1"
    );
}

#[test]
fn chrome_trace_is_structurally_valid() {
    let got = traced_run();
    let t = got.trim();
    assert!(t.starts_with('[') && t.ends_with(']'), "not a JSON array");
    assert!(!got.contains(",\n]"), "trailing comma before close");

    let records: Vec<&str> = got
        .lines()
        .filter(|l| l.starts_with('{'))
        .map(|l| l.trim_end_matches(','))
        .collect();
    assert!(records.len() > 10, "expected a non-trivial trace");

    let mut begins = 0usize;
    let mut ends = 0usize;
    for r in &records {
        // Every record is a single-line object with the required
        // trace_event keys.
        assert!(r.starts_with('{') && r.ends_with('}'), "bad record: {r}");
        for key in ["\"name\":", "\"ph\":", "\"ts\":", "\"pid\":", "\"tid\":"] {
            assert!(r.contains(key), "record missing {key}: {r}");
        }
        if r.contains("\"ph\":\"B\"") {
            begins += 1;
        }
        if r.contains("\"ph\":\"E\"") {
            ends += 1;
        }
    }
    assert_eq!(begins, ends, "unbalanced B/E span records");
    assert!(
        records.iter().any(|r| r.contains("\"ph\":\"M\"")),
        "process_name metadata missing"
    );
}

#[test]
fn tracing_does_not_change_the_simulation() {
    let mut plain = small_builder().build();
    let buf = SharedBuf::default();
    let mut traced = small_builder()
        .tracer(Box::new(ChromeTracer::new(Box::new(buf.clone()))))
        .build();

    let a = plain.run_to_completion();
    let b = traced.run_to_completion();
    assert_eq!(a.cycles, b.cycles, "tracing altered the end time");
    assert_eq!(a.all_done, b.all_done);
    assert_eq!(
        plain.stats().snapshot(),
        traced.stats().snapshot(),
        "tracing altered the statistics"
    );
    assert_eq!(plain.media_writes(), traced.media_writes());
    assert!(!buf.contents_string().is_empty());
}

#[test]
fn sampler_emits_csv_and_does_not_change_the_simulation() {
    let mut plain = small_builder().build();
    let buf = SharedBuf::default();
    let mut sampled = small_builder()
        .sample(Cycle(500), Box::new(buf.clone()))
        .build();

    let a = plain.run_to_completion();
    let b = sampled.run_to_completion();
    assert_eq!(a.cycles, b.cycles, "sampling altered the end time");
    assert_eq!(
        plain.stats().snapshot(),
        sampled.stats().snapshot(),
        "sampling altered the statistics"
    );
    drop(sampled);

    let csv = buf.contents_string();
    let mut lines = csv.lines();
    let header = lines.next().expect("csv header");
    assert!(
        header.starts_with("cycle,pb,et,rt,wpq,mc0_wr"),
        "unexpected header: {header}"
    );
    let cols = header.split(',').count();
    let mut prev_cycle = 0u64;
    let mut rows = 0usize;
    for line in lines {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields.len(), cols, "ragged row: {line}");
        let cycle: u64 = fields[0].parse().expect("numeric cycle");
        assert!(cycle > prev_cycle, "cycles must increase: {line}");
        assert_eq!(cycle % 500, 0, "off-interval sample: {line}");
        prev_cycle = cycle;
        for f in &fields[1..] {
            let _: u64 = f.parse().expect("numeric occupancy/bandwidth field");
        }
        rows += 1;
    }
    assert!(rows > 0, "expected at least one sample row");
}
