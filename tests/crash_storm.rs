//! Crash storm: cut the power at many instants across the real workload
//! suite and machine-check recovery consistency (§VI Theorem 2) every
//! time. This is the strongest end-to-end guarantee in the repository:
//! the entire stack — workloads, coherence, persist buffers, epoch
//! tables, recovery tables, WPQs, the commit/CDR protocol — must conspire
//! to leave NVM ordering-consistent at *every* cycle.

use asap::model::{Flavor, ModelKind, SimBuilder};
use asap::sim::{Cycle, SimConfig};
use asap::workloads::{make_workload, WorkloadKind, WorkloadParams};

fn crash_check(w: WorkloadKind, model: ModelKind, flavor: Flavor, at: u64, seed: u64) {
    let params = WorkloadParams {
        threads: 3,
        ops_per_thread: 80,
        seed,
        key_space: 128,
        ..Default::default()
    };
    let programs = make_workload(w, &params);
    let mut cfg = SimConfig::paper();
    cfg.num_cores = 3;
    let mut sim = SimBuilder::new(cfg, model, flavor)
        .programs(programs)
        .with_journal()
        .build();
    let report = sim.crash_at(Cycle(at)).expect("journal enabled");
    assert!(
        report.is_consistent(),
        "{w} under {model}_{flavor} crash at {at}: {:?}",
        report.violations
    );
}

#[test]
fn asap_rp_crash_storm_over_structures() {
    for w in [
        WorkloadKind::Cceh,
        WorkloadKind::FastFair,
        WorkloadKind::PClht,
        WorkloadKind::Queue,
        WorkloadKind::PArt,
    ] {
        for at in [3_000u64, 20_000, 90_000, 400_000] {
            crash_check(w, ModelKind::Asap, Flavor::Release, at, 5);
        }
    }
}

#[test]
fn asap_ep_crash_storm() {
    for w in [WorkloadKind::Cceh, WorkloadKind::Queue, WorkloadKind::Heap] {
        for at in [5_000u64, 50_000, 250_000] {
            crash_check(w, ModelKind::Asap, Flavor::Epoch, at, 9);
        }
    }
}

#[test]
fn asap_crash_storm_over_apps() {
    for w in [
        WorkloadKind::Nstore,
        WorkloadKind::Echo,
        WorkloadKind::Memcached,
        WorkloadKind::Vacation,
    ] {
        for at in [10_000u64, 120_000] {
            crash_check(w, ModelKind::Asap, Flavor::Release, at, 13);
        }
    }
}

#[test]
fn hops_and_baseline_crash_storm() {
    for model in [ModelKind::Hops, ModelKind::Baseline] {
        for w in [WorkloadKind::Cceh, WorkloadKind::Skiplist] {
            for at in [8_000u64, 150_000] {
                crash_check(w, model, Flavor::Release, at, 17);
            }
        }
    }
}

#[test]
fn tiny_recovery_table_crash_storm() {
    // A 2-entry RT maximizes NACK/fallback churn; consistency must hold.
    for at in [5_000u64, 40_000, 200_000] {
        let params = WorkloadParams {
            threads: 3,
            ops_per_thread: 60,
            seed: 21,
            key_space: 64,
            ..Default::default()
        };
        let programs = make_workload(WorkloadKind::PClht, &params);
        let cfg = SimConfig::builder().cores(3).rt_entries(2).build().unwrap();
        let mut sim = SimBuilder::new(cfg, ModelKind::Asap, Flavor::Release)
            .programs(programs)
            .with_journal()
            .build();
        let report = sim.crash_at(Cycle(at)).expect("journal enabled");
        assert!(
            report.is_consistent(),
            "tiny RT crash at {at}: {:?}",
            report.violations
        );
    }
}

#[test]
fn crash_after_completion_recovers_everything() {
    // After a clean run + retirement dfence, every epoch is committed:
    // the recovered image must be consistent and fully durable.
    let params = WorkloadParams {
        threads: 2,
        ops_per_thread: 50,
        seed: 31,
        ..Default::default()
    };
    let programs = make_workload(WorkloadKind::FastFair, &params);
    let mut cfg = SimConfig::paper();
    cfg.num_cores = 2;
    let mut sim = SimBuilder::new(cfg, ModelKind::Asap, Flavor::Release)
        .programs(programs)
        .with_journal()
        .build();
    sim.run_to_completion();
    let report = sim.crash_and_check().expect("journal enabled");
    assert!(report.is_consistent(), "{:?}", report.violations);
    assert_eq!(
        report.undo_records_applied, 0,
        "all undo records cleaned by commits"
    );
}
