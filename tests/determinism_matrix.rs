//! Determinism net: every (model, flavour, workload) cell must be
//! bit-reproducible. Event-ordering bugs (HashMap iteration leaking into
//! scheduling, time ties broken nondeterministically) show up here long
//! before they corrupt a figure.

use asap::harness::{run_once, RunSpec};
use asap::sim::{Flavor, ModelKind, SimConfig};
use asap::workloads::WorkloadKind;

fn fingerprint(model: ModelKind, flavor: Flavor, w: WorkloadKind) -> (u64, u64, u64, u64) {
    let out = run_once(&RunSpec {
        config: SimConfig::builder().cores(3).build().expect("valid config"),
        model,
        flavor,
        workload: w,
        ops_per_thread: 15,
        seed: 2024,
    });
    (
        out.cycles,
        out.media_writes,
        out.stats.inter_t_epoch_conflict,
        out.stats.epochs_committed,
    )
}

#[test]
fn every_model_workload_cell_is_reproducible() {
    let models = [
        (ModelKind::Baseline, Flavor::Release),
        (ModelKind::Hops, Flavor::Epoch),
        (ModelKind::Hops, Flavor::Release),
        (ModelKind::Asap, Flavor::Epoch),
        (ModelKind::Asap, Flavor::Release),
        (ModelKind::Bbb, Flavor::Release),
        (ModelKind::Eadr, Flavor::Release),
    ];
    // A representative slice (running all 14 × 7 would be slow in debug).
    let workloads = [
        WorkloadKind::Nstore,
        WorkloadKind::Queue,
        WorkloadKind::Cceh,
        WorkloadKind::FastFair,
        WorkloadKind::PClht,
        WorkloadKind::Bandwidth,
    ];
    for &(m, f) in &models {
        for &w in &workloads {
            let a = fingerprint(m, f, w);
            let b = fingerprint(m, f, w);
            assert_eq!(a, b, "{m}_{f} on {w} is nondeterministic");
        }
    }
}

#[test]
fn fingerprints_differ_across_models() {
    // Sanity that the fingerprint actually captures model behaviour:
    // the timing of at least baseline vs ASAP must differ.
    let base = fingerprint(ModelKind::Baseline, Flavor::Release, WorkloadKind::Cceh);
    let asap = fingerprint(ModelKind::Asap, Flavor::Release, WorkloadKind::Cceh);
    assert_ne!(base.0, asap.0, "models indistinguishable?");
}
