//! Property test for the crash-space equivalence relation the explorer
//! prunes with: two crash instants with equal crash-state keys must
//! recover to **byte-identical** NVM images (full `NvmImage` compare,
//! not just digests) and identical oracle reports — under both event
//! queue implementations, since the claim is about the simulated
//! machine, not the scheduler that drives it.

use asap::model::{Flavor, ModelKind, Sim, SimBuilder};
use asap::sim::{Cycle, DetRng, QueueKind, SimConfig};
use asap::workloads::{make_workload, WorkloadKind, WorkloadParams};

fn build(workload: WorkloadKind, model: ModelKind, qk: QueueKind, collect: bool) -> Sim {
    let params = WorkloadParams {
        threads: 2,
        ops_per_thread: 8,
        seed: 11,
        ..WorkloadParams::default()
    };
    let mut b = SimBuilder::new(SimConfig::paper(), model, Flavor::Release)
        .programs(make_workload(workload, &params))
        .queue_kind(qk)
        .with_journal();
    if collect {
        b = b.collect_crash_points();
    }
    b.build()
}

/// Observable equivalence intervals: the last timeline entry per cycle
/// wins (crashing "at" a cycle happens after all its events), each
/// interval running to the cycle before the next key change.
fn intervals(timeline: &[(u64, u64)], end: u64) -> Vec<(u64, u64, u64)> {
    let mut starts: Vec<(u64, u64)> = Vec::new();
    for &(c, k) in timeline {
        match starts.last_mut() {
            Some(last) if last.0 == c => last.1 = k,
            _ => starts.push((c, k)),
        }
    }
    starts
        .iter()
        .enumerate()
        .map(|(i, &(s, k))| {
            let e = if i + 1 < starts.len() {
                starts[i + 1].0 - 1
            } else {
                end
            };
            (s, e, k)
        })
        .collect()
}

#[test]
fn equal_keys_imply_byte_identical_recovery_under_both_queues() {
    let mut checked_pairs = 0u32;
    for qk in [QueueKind::Sharded, QueueKind::Heap] {
        for (workload, model) in [
            (WorkloadKind::Queue, ModelKind::Asap),
            (WorkloadKind::Queue, ModelKind::Bbb),
            (WorkloadKind::Cceh, ModelKind::Hops),
            (WorkloadKind::Cceh, ModelKind::Eadr),
        ] {
            let mut sim = build(workload, model, qk, true);
            sim.run_to_completion();
            let pts = sim.take_crash_points().expect("collector attached");
            let ivs = intervals(&pts.timeline, pts.end_cycle);
            assert!(!ivs.is_empty());

            // Sample a handful of multi-cycle intervals; within each,
            // crash at the first and last cycle (the most separated
            // pair) plus a seeded interior point.
            let mut rng = DetRng::seed(0xA5A5 ^ pts.end_cycle);
            let wide: Vec<&(u64, u64, u64)> = ivs.iter().filter(|iv| iv.1 > iv.0).collect();
            assert!(
                !wide.is_empty(),
                "{workload:?}/{model:?}/{qk}: no multi-cycle interval to test"
            );
            for _ in 0..4.min(wide.len()) {
                let &&(s, e, key) = &wide[rng.next_u64() as usize % wide.len()];
                // The collector's own lookup must agree on the pair.
                assert_eq!(pts.key_at(s), key);
                assert_eq!(pts.key_at(e), key);

                let mut a = build(workload, model, qk, false);
                a.run_for(Cycle(s));
                let report_a = a.crash_check_now().expect("journal enabled");
                let (img_a, _) = a.recovered_preview().expect("journal enabled");

                // Independent re-run straight to the far end of the
                // interval (plus an interior stop, which must not
                // change anything — determinism).
                let mid = s + (rng.next_u64() % (e - s + 1).max(1));
                let mut b = build(workload, model, qk, false);
                b.run_for(Cycle(mid));
                b.run_for(Cycle(e));
                let report_b = b.crash_check_now().expect("journal enabled");
                let (img_b, _) = b.recovered_preview().expect("journal enabled");

                // Full byte-level image compare — the property the
                // explorer's pruning rests on.
                assert_eq!(
                    img_a, img_b,
                    "{workload:?}/{model:?}/{qk}: cycles {s} and {e} share key {key:#x} \
                     but recover different images"
                );
                assert_eq!(
                    report_a, report_b,
                    "{workload:?}/{model:?}/{qk}: cycles {s} and {e} share key {key:#x} \
                     but report differently"
                );
                checked_pairs += 1;
            }

            // Negative control: adjacent intervals carry different keys,
            // so pruning never merges genuinely distinct states.
            for w in ivs.windows(2) {
                assert_ne!(w[0].2, w[1].2, "adjacent intervals share a key");
            }
        }
    }
    assert!(checked_pairs >= 16, "only {checked_pairs} pairs checked");
}
