//! Regression tests pinning the *shapes* of the paper's figures at quick
//! scale: if a refactor flips who wins (or kills a crossover the paper
//! highlights), these fail before the full-scale report does.

use asap::harness::experiments::{abl_mc_count, fig09_writes, fig13_bandwidth, ExperimentScale};
use asap::harness::{run_once, RunSpec};
use asap::sim::{Cycle, Flavor, ModelKind, SimConfig};
use asap::workloads::WorkloadKind;

fn tiny() -> ExperimentScale {
    ExperimentScale {
        ops: 25,
        window: Cycle(40_000),
        seed: 42,
    }
}

fn cycles(model: ModelKind, flavor: Flavor, w: WorkloadKind, threads: usize) -> u64 {
    run_once(&RunSpec {
        config: SimConfig::builder()
            .cores(threads)
            .build()
            .expect("valid config"),
        model,
        flavor,
        workload: w,
        ops_per_thread: 40,
        seed: 42,
    })
    .cycles
}

/// Fig. 8's headline ordering on the average across a representative
/// workload subset: baseline slowest, ASAP_RP > HOPS_RP, eADR fastest.
#[test]
fn fig08_shape_headline_ordering() {
    let subset = [
        WorkloadKind::Cceh,
        WorkloadKind::Queue,
        WorkloadKind::Echo,
        WorkloadKind::PClht,
    ];
    let mut base = 0.0;
    let mut hops = 0.0;
    let mut asap = 0.0;
    let mut eadr = 0.0;
    for w in subset {
        let b = cycles(ModelKind::Baseline, Flavor::Release, w, 4) as f64;
        base += 1.0;
        hops += b / cycles(ModelKind::Hops, Flavor::Release, w, 4) as f64;
        asap += b / cycles(ModelKind::Asap, Flavor::Release, w, 4) as f64;
        eadr += b / cycles(ModelKind::Eadr, Flavor::Release, w, 4) as f64;
    }
    assert!(
        asap > hops,
        "ASAP_RP avg speedup ({asap:.2}) must beat HOPS_RP ({hops:.2})"
    );
    assert!(asap > base, "ASAP_RP must beat baseline");
    assert!(
        eadr >= asap * 0.95,
        "eADR should cap the speedups (eadr={eadr:.2} asap={asap:.2})"
    );
}

/// Fig. 8's crossover: HOPS_EP drops below baseline on the small-epoch
/// concurrent structures (the paper calls out queue/CCEH/Dash/P-ART).
#[test]
fn fig08_shape_hops_ep_below_baseline_on_queue() {
    let base = cycles(ModelKind::Baseline, Flavor::Epoch, WorkloadKind::Queue, 4);
    let hops_ep = cycles(ModelKind::Hops, Flavor::Epoch, WorkloadKind::Queue, 4);
    assert!(
        hops_ep > base,
        "HOPS_EP ({hops_ep}) should fall below baseline ({base}) on the queue"
    );
}

/// Fig. 9's direction: ASAP persists no more than ~10% extra writes on
/// average (it usually persists fewer).
#[test]
fn fig09_shape_write_counts() {
    let t = fig09_writes(tiny());
    let avg: f64 = t.cell_f64("average", "normalized").expect("average row");
    assert!(avg < 1.10, "ASAP/HOPS write ratio too high: {avg}");
}

/// Fig. 10's direction: ASAP's 4-thread throughput scaling beats HOPS's
/// on the P-ART workload (the paper's best scaler).
#[test]
fn fig10_shape_part_scaling() {
    let tput = |m: ModelKind, threads: usize| {
        let out = run_once(&RunSpec {
            config: SimConfig::builder()
                .cores(threads)
                .build()
                .expect("valid config"),
            model: m,
            flavor: Flavor::Release,
            workload: WorkloadKind::PArt,
            ops_per_thread: 40,
            seed: 42,
        });
        out.ops as f64 / out.cycles as f64
    };
    let hops = tput(ModelKind::Hops, 4) / tput(ModelKind::Hops, 1);
    let asap = tput(ModelKind::Asap, 4) / tput(ModelKind::Asap, 1);
    assert!(
        asap >= hops * 0.9,
        "ASAP p-art scaling ({asap:.2}x) should track/beat HOPS ({hops:.2}x)"
    );
}

/// Fig. 13's direction: ASAP out-utilizes HOPS and baseline on the
/// alternating-MC probe.
#[test]
fn fig13_shape_bandwidth_utilization() {
    let t = fig13_bandwidth(tiny());
    let base = t
        .cell_f64("baseline", "utilization_pct")
        .expect("baseline row");
    let hops = t.cell_f64("hops", "utilization_pct").expect("hops row");
    let asap = t.cell_f64("asap", "utilization_pct").expect("asap row");
    assert!(asap > hops, "asap {asap} must beat hops {hops}");
    assert!(asap > base, "asap {asap} must beat baseline {base}");
}

/// §III's motivation: ASAP's edge over HOPS grows with MC count on the
/// single-thread ordering probe.
#[test]
fn multi_mc_motivation_holds() {
    let t = abl_mc_count(tiny());
    let one = t.cell_f64("1", "asap_over_hops").expect("1-MC row");
    let four = t.cell_f64("4", "asap_over_hops").expect("4-MC row");
    assert!(
        four > one,
        "ASAP's advantage must grow with MCs (1MC: {one}, 4MC: {four})"
    );
}

/// Fig. 12's bound: the recovery table never exceeds its capacity, and
/// BBB/eADR never touch it.
#[test]
fn fig12_shape_rt_bounded() {
    for w in [WorkloadKind::Cceh, WorkloadKind::Echo] {
        let out = run_once(&RunSpec {
            config: SimConfig::paper(),
            model: ModelKind::Asap,
            flavor: Flavor::Release,
            workload: w,
            ops_per_thread: 40,
            seed: 42,
        });
        assert!(out.rt_max_occupancy <= SimConfig::paper().rt_entries, "{w}");
    }
    let out = run_once(&RunSpec {
        config: SimConfig::paper(),
        model: ModelKind::Bbb,
        flavor: Flavor::Release,
        workload: WorkloadKind::Cceh,
        ops_per_thread: 40,
        seed: 42,
    });
    assert_eq!(out.rt_max_occupancy, 0, "BBB must not use recovery tables");
}
