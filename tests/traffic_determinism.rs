//! Determinism suite for the open-loop traffic frontend: the same seed
//! must yield byte-identical request banks, trace files, replayed
//! outcomes and latency tables — regardless of sweep worker count or
//! event-queue kind.
//!
//! The golden fixture pins a tiny sweep's full latency table. To
//! regenerate after an intentional change:
//!
//! ```text
//! cargo test -q --test traffic_determinism golden -- --nocapture
//! ```
//!
//! and copy the `--- got ---` block into
//! `tests/fixtures/traffic_golden.md`.

use asap::harness::pool;
use asap::harness::traffic::{
    run_traffic, run_traffic_bank, traffic_table, TrafficApp, TrafficScale,
};
use asap::model::set_default_queue_kind;
use asap::sim::{Flavor, ModelKind, QueueKind};
use asap::workloads::traffic::{format_trace, generate, parse_trace, ArrivalKind, TrafficConfig};
use std::sync::Arc;

/// A sweep small enough for a debug-build integration test, with every
/// axis pinned explicitly (the golden fixture depends on it).
fn pinned_scale() -> TrafficScale {
    TrafficScale {
        requests: 600,
        gaps: vec![900],
        arrival: ArrivalKind::Poisson,
        apps: vec![TrafficApp::Memcached, TrafficApp::Echo],
        models: vec![ModelKind::Baseline, ModelKind::Asap, ModelKind::Eadr],
        flavor: Flavor::Release,
        update_fraction: 0.5,
        zipf_theta: 0.99,
        key_space: 1 << 14,
        seed: 9,
    }
}

#[test]
fn banks_and_trace_files_are_byte_identical_across_generations() {
    let cfg = TrafficConfig {
        requests: 4_000,
        ..TrafficConfig::default()
    };
    let a = generate(&cfg);
    let b = generate(&cfg);
    assert_eq!(a, b, "same config must expand to the same bank");
    assert_eq!(format_trace(&a), format_trace(&b));
    // The arrival timeline alone is also reproducible.
    let at: Vec<u64> = a.iter().map(|r| r.at).collect();
    assert!(at.windows(2).all(|w| w[0] <= w[1]), "time-ordered");
    assert_eq!(at, b.iter().map(|r| r.at).collect::<Vec<_>>());
}

#[test]
fn trace_replay_reproduces_the_generated_outcome() {
    for spec in pinned_scale().specs().iter().take(2) {
        let generated = run_traffic(spec);
        let text = format_trace(&generate(&spec.traffic));
        let replayed = parse_trace(&text).expect("own trace must parse");
        let replay = run_traffic_bank(spec, Arc::new(replayed));
        assert_eq!(
            generated, replay,
            "replaying an exported trace must reproduce the leg bit-for-bit"
        );
    }
}

#[test]
fn latency_tables_are_identical_across_workers_and_queues() {
    let scale = pinned_scale();
    let mut tables = Vec::new();
    for queue in [QueueKind::Sharded, QueueKind::Heap] {
        set_default_queue_kind(queue);
        for workers in [1, 3] {
            pool::set_worker_override(workers);
            tables.push(traffic_table(&scale).to_markdown());
        }
    }
    pool::set_worker_override(0);
    set_default_queue_kind(QueueKind::Sharded);
    assert!(
        tables.windows(2).all(|w| w[0] == w[1]),
        "latency tables must not depend on worker count or queue kind"
    );
}

#[test]
fn golden_traffic_table_is_stable() {
    let golden = include_str!("fixtures/traffic_golden.md");
    let got = traffic_table(&pinned_scale()).to_markdown();
    assert!(
        got == golden,
        "traffic table drifted from tests/fixtures/traffic_golden.md — if \
         the change is intentional, regenerate it (see module docs).\n\
         --- got ---\n{got}\n--- expected ---\n{golden}"
    );
}
