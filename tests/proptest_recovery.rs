//! Property-based crash-consistency testing: random multi-threaded
//! programs, random crash instants, machine-checked recovery (§VI
//! Theorem 2), across all three recoverable models.

use asap::model::ops::{BurstCtx, BurstStatus, ThreadProgram};
use asap::model::{Flavor, ModelKind, SimBuilder};
use asap::sim::{Cycle, SimConfig};
use proptest::prelude::*;

/// A randomly generated instruction for the mini-programs.
#[derive(Debug, Clone)]
enum Instr {
    Store { slot: u8, val: u64 },
    Load { slot: u8 },
    OFence,
    DFence,
    LockedIncrement { slot: u8 },
    Compute { cycles: u16 },
}

fn instr_strategy() -> impl Strategy<Value = Instr> {
    prop_oneof![
        4 => (any::<u8>(), any::<u64>()).prop_map(|(s, v)| Instr::Store { slot: s % 24, val: v }),
        2 => any::<u8>().prop_map(|s| Instr::Load { slot: s % 24 }),
        2 => Just(Instr::OFence),
        1 => Just(Instr::DFence),
        2 => any::<u8>().prop_map(|s| Instr::LockedIncrement { slot: s % 6 }),
        1 => (1u16..300).prop_map(|c| Instr::Compute { cycles: c }),
    ]
}

const SHARED_BASE: u64 = 0x20_0000;
const LOCK_ADDR: u64 = 0x1000;

/// Interprets a random instruction list; locked increments span three
/// bursts (acquire / critical / release) like the real workloads.
struct RandomProgram {
    instrs: Vec<Instr>,
    pc: usize,
    tid_base: u64,
    lock_state: u8, // 0 = none, 1 = acquiring, 2 = in crit, 3 = releasing
    lock_slot: u8,
}

impl RandomProgram {
    fn new(instrs: Vec<Instr>, thread: usize) -> RandomProgram {
        RandomProgram {
            instrs,
            pc: 0,
            tid_base: 0x100_0000 + thread as u64 * 0x10_0000,
            lock_state: 0,
            lock_slot: 0,
        }
    }
}

impl ThreadProgram for RandomProgram {
    fn next_burst(&mut self, t: asap::sim::ThreadId, ctx: &mut BurstCtx<'_>) -> BurstStatus {
        match self.lock_state {
            1 => {
                if ctx.acquire_cas(LOCK_ADDR, 0, t.0 as u64 + 1) {
                    self.lock_state = 2;
                } else {
                    ctx.compute(40);
                }
                return BurstStatus::Running;
            }
            2 => {
                let addr = SHARED_BASE + self.lock_slot as u64 * 64;
                let v = ctx.load_u64(addr);
                ctx.store_u64(addr, v + 1);
                ctx.ofence();
                self.lock_state = 3;
                return BurstStatus::Running;
            }
            3 => {
                ctx.release_store(LOCK_ADDR, 0);
                self.lock_state = 0;
                return BurstStatus::Running;
            }
            _ => {}
        }

        // Execute a handful of straight-line instructions per burst.
        for _ in 0..4 {
            let Some(instr) = self.instrs.get(self.pc).cloned() else {
                ctx.dfence();
                return BurstStatus::Finished;
            };
            self.pc += 1;
            match instr {
                Instr::Store { slot, val } => {
                    ctx.store_u64(self.tid_base + slot as u64 * 64, val);
                }
                Instr::Load { slot } => {
                    ctx.load_u64(self.tid_base + slot as u64 * 64);
                }
                Instr::OFence => ctx.ofence(),
                Instr::DFence => ctx.dfence(),
                Instr::Compute { cycles } => ctx.compute(cycles as u64),
                Instr::LockedIncrement { slot } => {
                    self.lock_state = 1;
                    self.lock_slot = slot;
                    return BurstStatus::Running;
                }
            }
        }
        BurstStatus::Running
    }

    fn name(&self) -> &str {
        "random"
    }
}

fn run_crash(
    model: ModelKind,
    flavor: Flavor,
    programs_src: &[Vec<Instr>],
    crash_at: u64,
    rt_entries: usize,
) -> Result<(), TestCaseError> {
    let cfg = SimConfig::builder()
        .cores(programs_src.len())
        .rt_entries(rt_entries)
        .build()
        .expect("valid config");
    let mut b = SimBuilder::new(cfg, model, flavor).with_journal();
    for (i, instrs) in programs_src.iter().enumerate() {
        b = b.program(Box::new(RandomProgram::new(instrs.clone(), i)));
    }
    let mut sim = b.build();
    let report = sim.crash_at(Cycle(crash_at));
    prop_assert!(
        report.is_consistent(),
        "{model}_{flavor} rt={rt_entries} crash@{crash_at}: {:?}",
        report.violations
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn asap_random_programs_recover_consistently(
        p0 in prop::collection::vec(instr_strategy(), 5..60),
        p1 in prop::collection::vec(instr_strategy(), 5..60),
        crash_at in 500u64..120_000,
    ) {
        run_crash(ModelKind::Asap, Flavor::Release, &[p0, p1], crash_at, 32)?;
    }

    #[test]
    fn asap_ep_random_programs_recover_consistently(
        p0 in prop::collection::vec(instr_strategy(), 5..40),
        p1 in prop::collection::vec(instr_strategy(), 5..40),
        crash_at in 500u64..80_000,
    ) {
        run_crash(ModelKind::Asap, Flavor::Epoch, &[p0, p1], crash_at, 32)?;
    }

    #[test]
    fn asap_tiny_rt_recovers_consistently(
        p0 in prop::collection::vec(instr_strategy(), 5..40),
        p1 in prop::collection::vec(instr_strategy(), 5..40),
        crash_at in 500u64..80_000,
        rt in 2usize..6,
    ) {
        run_crash(ModelKind::Asap, Flavor::Release, &[p0, p1], crash_at, rt)?;
    }

    #[test]
    fn hops_random_programs_recover_consistently(
        p0 in prop::collection::vec(instr_strategy(), 5..40),
        p1 in prop::collection::vec(instr_strategy(), 5..40),
        crash_at in 500u64..80_000,
    ) {
        run_crash(ModelKind::Hops, Flavor::Release, &[p0, p1], crash_at, 32)?;
    }

    #[test]
    fn baseline_random_programs_recover_consistently(
        p0 in prop::collection::vec(instr_strategy(), 5..40),
        crash_at in 500u64..60_000,
    ) {
        run_crash(ModelKind::Baseline, Flavor::Release, &[p0], crash_at, 32)?;
    }

    #[test]
    fn three_thread_lock_heavy_recovers(
        seeds in prop::collection::vec(0u8..6, 12),
        crash_at in 1_000u64..150_000,
    ) {
        // A lock-increment-heavy program stresses undo/delay collisions.
        let prog: Vec<Instr> = seeds
            .iter()
            .map(|&s| Instr::LockedIncrement { slot: s })
            .collect();
        run_crash(
            ModelKind::Asap,
            Flavor::Release,
            &[prog.clone(), prog.clone(), prog],
            crash_at,
            8,
        )?;
    }
}
