//! Randomized crash-consistency testing: random multi-threaded
//! programs, random crash instants, machine-checked recovery (§VI
//! Theorem 2), across all three recoverable models.
//!
//! Programs and crash instants come from the workspace's own [`DetRng`],
//! seeded per case, so failures are reproducible from the printed case
//! number.

use asap::model::ops::{BurstCtx, BurstStatus, ThreadProgram};
use asap::model::{Flavor, ModelKind, SimBuilder};
use asap::sim::{Cycle, DetRng, SimConfig};

/// A randomly generated instruction for the mini-programs.
#[derive(Debug, Clone)]
enum Instr {
    Store { slot: u8, val: u64 },
    Load { slot: u8 },
    OFence,
    DFence,
    LockedIncrement { slot: u8 },
    Compute { cycles: u16 },
}

/// Weighted instruction pick, mirroring the original generator's 4:2:2:1:2:1
/// store/load/ofence/dfence/locked-inc/compute distribution.
fn random_instr(rng: &mut DetRng) -> Instr {
    match rng.below(12) {
        0..=3 => Instr::Store {
            slot: (rng.next_u64() % 24) as u8,
            val: rng.next_u64(),
        },
        4..=5 => Instr::Load {
            slot: (rng.next_u64() % 24) as u8,
        },
        6..=7 => Instr::OFence,
        8 => Instr::DFence,
        9..=10 => Instr::LockedIncrement {
            slot: (rng.next_u64() % 6) as u8,
        },
        _ => Instr::Compute {
            cycles: rng.range_inclusive(1, 299) as u16,
        },
    }
}

fn random_program(rng: &mut DetRng, min: usize, max: usize) -> Vec<Instr> {
    let n = min + rng.index(max - min);
    (0..n).map(|_| random_instr(rng)).collect()
}

const SHARED_BASE: u64 = 0x20_0000;
const LOCK_ADDR: u64 = 0x1000;

/// Interprets a random instruction list; locked increments span three
/// bursts (acquire / critical / release) like the real workloads.
struct RandomProgram {
    instrs: Vec<Instr>,
    pc: usize,
    tid_base: u64,
    lock_state: u8, // 0 = none, 1 = acquiring, 2 = in crit, 3 = releasing
    lock_slot: u8,
}

impl RandomProgram {
    fn new(instrs: Vec<Instr>, thread: usize) -> RandomProgram {
        RandomProgram {
            instrs,
            pc: 0,
            tid_base: 0x100_0000 + thread as u64 * 0x10_0000,
            lock_state: 0,
            lock_slot: 0,
        }
    }
}

impl ThreadProgram for RandomProgram {
    fn next_burst(&mut self, t: asap::sim::ThreadId, ctx: &mut BurstCtx<'_>) -> BurstStatus {
        match self.lock_state {
            1 => {
                if ctx.acquire_cas(LOCK_ADDR, 0, t.0 as u64 + 1) {
                    self.lock_state = 2;
                } else {
                    ctx.compute(40);
                }
                return BurstStatus::Running;
            }
            2 => {
                let addr = SHARED_BASE + self.lock_slot as u64 * 64;
                let v = ctx.load_u64(addr);
                ctx.store_u64(addr, v + 1);
                ctx.ofence();
                self.lock_state = 3;
                return BurstStatus::Running;
            }
            3 => {
                ctx.release_store(LOCK_ADDR, 0);
                self.lock_state = 0;
                return BurstStatus::Running;
            }
            _ => {}
        }

        // Execute a handful of straight-line instructions per burst.
        for _ in 0..4 {
            let Some(instr) = self.instrs.get(self.pc).cloned() else {
                ctx.dfence();
                return BurstStatus::Finished;
            };
            self.pc += 1;
            match instr {
                Instr::Store { slot, val } => {
                    ctx.store_u64(self.tid_base + slot as u64 * 64, val);
                }
                Instr::Load { slot } => {
                    ctx.load_u64(self.tid_base + slot as u64 * 64);
                }
                Instr::OFence => ctx.ofence(),
                Instr::DFence => ctx.dfence(),
                Instr::Compute { cycles } => ctx.compute(cycles as u64),
                Instr::LockedIncrement { slot } => {
                    self.lock_state = 1;
                    self.lock_slot = slot;
                    return BurstStatus::Running;
                }
            }
        }
        BurstStatus::Running
    }

    fn name(&self) -> &str {
        "random"
    }
}

fn run_crash(
    case: u64,
    model: ModelKind,
    flavor: Flavor,
    programs_src: &[Vec<Instr>],
    crash_at: u64,
    rt_entries: usize,
) {
    let cfg = SimConfig::builder()
        .cores(programs_src.len())
        .rt_entries(rt_entries)
        .build()
        .expect("valid config");
    let mut b = SimBuilder::new(cfg, model, flavor).with_journal();
    for (i, instrs) in programs_src.iter().enumerate() {
        b = b.program(Box::new(RandomProgram::new(instrs.clone(), i)));
    }
    let mut sim = b.build();
    let report = sim.crash_at(Cycle(crash_at)).expect("journal enabled");
    assert!(
        report.is_consistent(),
        "case {case}: {model}_{flavor} rt={rt_entries} crash@{crash_at}: {:?}",
        report.violations
    );
}

const CASES: u64 = 48;

fn case_rng(test: u64, case: u64) -> DetRng {
    DetRng::seed(0x5EC0_4E4Au64 ^ (test << 32) ^ case)
}

#[test]
fn asap_random_programs_recover_consistently() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let p0 = random_program(&mut rng, 5, 60);
        let p1 = random_program(&mut rng, 5, 60);
        let crash_at = rng.range_inclusive(500, 119_999);
        run_crash(
            case,
            ModelKind::Asap,
            Flavor::Release,
            &[p0, p1],
            crash_at,
            32,
        );
    }
}

#[test]
fn asap_ep_random_programs_recover_consistently() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let p0 = random_program(&mut rng, 5, 40);
        let p1 = random_program(&mut rng, 5, 40);
        let crash_at = rng.range_inclusive(500, 79_999);
        run_crash(
            case,
            ModelKind::Asap,
            Flavor::Epoch,
            &[p0, p1],
            crash_at,
            32,
        );
    }
}

#[test]
fn asap_tiny_rt_recovers_consistently() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let p0 = random_program(&mut rng, 5, 40);
        let p1 = random_program(&mut rng, 5, 40);
        let crash_at = rng.range_inclusive(500, 79_999);
        let rt = rng.range_inclusive(2, 5) as usize;
        run_crash(
            case,
            ModelKind::Asap,
            Flavor::Release,
            &[p0, p1],
            crash_at,
            rt,
        );
    }
}

#[test]
fn hops_random_programs_recover_consistently() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let p0 = random_program(&mut rng, 5, 40);
        let p1 = random_program(&mut rng, 5, 40);
        let crash_at = rng.range_inclusive(500, 79_999);
        run_crash(
            case,
            ModelKind::Hops,
            Flavor::Release,
            &[p0, p1],
            crash_at,
            32,
        );
    }
}

#[test]
fn baseline_random_programs_recover_consistently() {
    for case in 0..CASES {
        let mut rng = case_rng(5, case);
        let p0 = random_program(&mut rng, 5, 60);
        let crash_at = rng.range_inclusive(500, 59_999);
        run_crash(
            case,
            ModelKind::Baseline,
            Flavor::Release,
            &[p0],
            crash_at,
            32,
        );
    }
}

#[test]
fn three_thread_lock_heavy_recovers() {
    for case in 0..CASES {
        let mut rng = case_rng(6, case);
        // A lock-increment-heavy program stresses undo/delay collisions.
        let prog: Vec<Instr> = (0..12)
            .map(|_| Instr::LockedIncrement {
                slot: rng.below(6) as u8,
            })
            .collect();
        let crash_at = rng.range_inclusive(1_000, 149_999);
        run_crash(
            case,
            ModelKind::Asap,
            Flavor::Release,
            &[prog.clone(), prog.clone(), prog],
            crash_at,
            8,
        );
    }
}
