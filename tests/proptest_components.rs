//! Property-based tests on the core data structures and invariants:
//! allocator disjointness, recovery-table state machine, Bloom filter,
//! event-queue ordering, histogram percentiles and the dependency DAG.

use asap::cache::CountingBloom;
use asap::mc::RecoveryTable;
use asap::model::DepGraph;
use asap::pm::{NvmImage, PmAllocator, PmSpace};
use asap::sim::{Cycle, EpochId, EventQueue, Histogram, LineAddr, ThreadId};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- allocator ----

    #[test]
    fn allocations_never_overlap(sizes in prop::collection::vec(1u64..512, 1..64)) {
        let mut a = PmAllocator::new(0x1000, 1 << 22);
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for s in sizes {
            let addr = a.alloc(s).unwrap();
            let rounded = s.div_ceil(64) * 64;
            for &(b, len) in &ranges {
                prop_assert!(addr + rounded <= b || b + len <= addr,
                    "overlap: [{addr},{}) vs [{b},{})", addr + rounded, b + len);
            }
            ranges.push((addr, rounded));
        }
    }

    #[test]
    fn freed_blocks_are_reused_not_leaked(count in 1usize..32) {
        let mut a = PmAllocator::new(0, 1 << 20);
        let addrs: Vec<u64> = (0..count).map(|_| a.alloc(64).unwrap()).collect();
        for &x in &addrs {
            a.free(x, 64);
        }
        let again: Vec<u64> = (0..count).map(|_| a.alloc(64).unwrap()).collect();
        let mut sorted_a = addrs.clone();
        let mut sorted_b = again.clone();
        sorted_a.sort_unstable();
        sorted_b.sort_unstable();
        prop_assert_eq!(sorted_a, sorted_b, "free list must recycle exactly");
    }

    // ---- functional memory ----

    #[test]
    fn pm_space_reads_back_writes(writes in prop::collection::vec((0u64..0x10_000, any::<u64>()), 1..50)) {
        let mut pm = PmSpace::new();
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (addr, v) in writes {
            let addr = addr & !7; // aligned
            pm.write_u64(addr, v);
            model.insert(addr, v);
        }
        for (addr, v) in model {
            prop_assert_eq!(pm.read_u64(addr), v);
        }
    }

    // ---- recovery table state machine ----

    /// Random interleavings of early/safe flushes from two epochs to a
    /// small address pool, then either a crash or a commit sequence: the
    /// final value of each line must be the last *surviving* write.
    #[test]
    fn rt_crash_never_leaks_uncommitted_early_values(
        ops in prop::collection::vec((0u8..4, any::<bool>(), 1u8..255), 1..40),
        crash in any::<bool>(),
    ) {
        let mut rt = RecoveryTable::new(64);
        let mut nvm = NvmImage::new();
        let e_old = EpochId::new(ThreadId(0), 0);
        let e_new = EpochId::new(ThreadId(0), 1);
        let mut seq = 0u64;
        // Track the last safe write per line (what a crash must recover
        // at minimum if no early values survive).
        let mut last_safe: HashMap<LineAddr, u8> = HashMap::new();
        for (slot, early, val) in ops {
            let line = LineAddr::containing(slot as u64 * 64);
            seq += 1;
            // Early flushes come from the NEW (unsafe) epoch; safe ones
            // from the OLD epoch.
            let epoch = if early { e_new } else { e_old };
            let action = rt.handle_flush(line, [val; 64], seq, epoch, early, &mut nvm);
            let _ = action;
            if !early {
                last_safe.insert(line, val);
            }
        }
        if crash {
            rt.crash_drain(&mut nvm);
            // After the crash drain no uncommitted early value may be
            // visible where a safe value existed: the recovered value
            // must be the last safe write (or zero).
            for (line, val) in last_safe {
                let got = nvm.line(line).data[0];
                prop_assert_eq!(got, val,
                    "line {:?} recovered {} but last safe write was {}", line, got, val);
            }
        } else {
            // Commit both epochs in dependency order: all records drain.
            rt.commit_epoch(e_old, &mut nvm);
            rt.commit_epoch(e_new, &mut nvm);
            prop_assert_eq!(rt.occupancy(), 0);
        }
    }

    // ---- Bloom filter ----

    #[test]
    fn bloom_has_no_false_negatives(lines in prop::collection::vec(0u64..10_000, 1..128)) {
        let mut f = CountingBloom::new(4096, 3);
        for &l in &lines {
            f.insert(LineAddr::containing(l * 64));
        }
        for &l in &lines {
            prop_assert!(f.maybe_contains(LineAddr::containing(l * 64)));
        }
    }

    #[test]
    fn bloom_remove_restores_absence(lines in prop::collection::vec(0u64..1000, 1..32)) {
        let mut f = CountingBloom::new(4096, 3);
        let mut unique = lines.clone();
        unique.sort_unstable();
        unique.dedup();
        for &l in &unique {
            f.insert(LineAddr::containing(l * 64));
        }
        for &l in &unique {
            f.remove(LineAddr::containing(l * 64));
        }
        prop_assert!(f.is_empty());
        for &l in &unique {
            prop_assert!(!f.maybe_contains(LineAddr::containing(l * 64)));
        }
    }

    // ---- event queue ----

    #[test]
    fn event_queue_pops_in_time_then_fifo_order(times in prop::collection::vec(0u64..1000, 1..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Cycle(t), i);
        }
        let mut last: Option<(Cycle, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt, "time went backwards");
                if t == lt {
                    prop_assert!(i > li, "FIFO violated for same-cycle events");
                }
            }
            last = Some((t, i));
        }
    }

    // ---- histogram ----

    #[test]
    fn histogram_percentiles_are_monotonic(samples in prop::collection::vec(0usize..64, 1..200)) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut prev = 0;
        for p in [10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = h.percentile(p);
            prop_assert!(v >= prev, "percentile not monotonic");
            prev = v;
        }
        prop_assert_eq!(h.percentile(100.0), h.max());
        let max = *samples.iter().max().unwrap() as f64;
        let min = *samples.iter().min().unwrap() as f64;
        prop_assert!(h.mean() <= max && h.mean() >= min);
    }

    // ---- dependency DAG ----

    /// Building a graph the way the protocol does (dependencies always
    /// point to *older* epochs of other threads) keeps it acyclic.
    #[test]
    fn protocol_shaped_dep_graphs_are_acyclic(
        edges in prop::collection::vec((0usize..3, 0u64..20, 0usize..3, 0u64..20), 0..60),
    ) {
        let mut g = DepGraph::new();
        for (t1, ts1, t2, ts2) in edges {
            if t1 == t2 {
                continue;
            }
            // Protocol rule: a dependent epoch is created *after* the
            // source epoch closes; model by forcing source.ts <= dep.ts.
            let (src, dep) = if ts1 <= ts2 {
                (EpochId::new(ThreadId(t1), ts1), EpochId::new(ThreadId(t2), ts2 + 1))
            } else {
                (EpochId::new(ThreadId(t2), ts2), EpochId::new(ThreadId(t1), ts1 + 1))
            };
            g.add_cross_dep(dep, src);
        }
        prop_assert!(g.topological_order().is_some(), "protocol-shaped graph must be a DAG");
    }
}
