//! Randomized property tests on the core data structures and invariants:
//! allocator disjointness, recovery-table state machine, Bloom filter,
//! event-queue ordering, histogram percentiles and the dependency DAG.
//!
//! Cases are generated with the workspace's own [`DetRng`] (seeded per
//! case, so every failure is reproducible from the printed case number)
//! rather than an external property-testing framework, which keeps the
//! test suite dependency-free.

use asap::cache::CountingBloom;
use asap::mc::RecoveryTable;
use asap::model::DepGraph;
use asap::pm::{NvmImage, PmAllocator, PmSpace};
use asap::sim::{
    Cycle, DetRng, EpochId, EventQueue, Histogram, LineAddr, LineIdx, LineTable, LogHistogram,
    ThreadId,
};
use std::collections::{HashMap, HashSet};

const CASES: u64 = 64;

/// Per-case RNG: derived from the test name so suites stay independent.
fn case_rng(test: u64, case: u64) -> DetRng {
    DetRng::seed(0xA5A9 ^ (test << 32) ^ case)
}

// ---- allocator ----

#[test]
fn allocations_never_overlap() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let n = rng.index(63) + 1;
        let mut a = PmAllocator::new(0x1000, 1 << 22);
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for _ in 0..n {
            let s = rng.range_inclusive(1, 511);
            let addr = a.alloc(s).unwrap();
            let rounded = s.div_ceil(64) * 64;
            for &(b, len) in &ranges {
                assert!(
                    addr + rounded <= b || b + len <= addr,
                    "case {case}: overlap: [{addr},{}) vs [{b},{})",
                    addr + rounded,
                    b + len
                );
            }
            ranges.push((addr, rounded));
        }
    }
}

#[test]
fn freed_blocks_are_reused_not_leaked() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let count = rng.index(31) + 1;
        let mut a = PmAllocator::new(0, 1 << 20);
        let addrs: Vec<u64> = (0..count).map(|_| a.alloc(64).unwrap()).collect();
        for &x in &addrs {
            a.free(x, 64);
        }
        let again: Vec<u64> = (0..count).map(|_| a.alloc(64).unwrap()).collect();
        let mut sorted_a = addrs.clone();
        let mut sorted_b = again.clone();
        sorted_a.sort_unstable();
        sorted_b.sort_unstable();
        assert_eq!(
            sorted_a, sorted_b,
            "case {case}: free list must recycle exactly"
        );
    }
}

// ---- functional memory ----

#[test]
fn pm_space_reads_back_writes() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let n = rng.index(49) + 1;
        let mut pm = PmSpace::new();
        let mut model: HashMap<u64, u64> = HashMap::new();
        for _ in 0..n {
            let addr = rng.below(0x10_000) & !7; // aligned
            let v = rng.next_u64();
            pm.write_u64(addr, v);
            model.insert(addr, v);
        }
        for (addr, v) in model {
            assert_eq!(pm.read_u64(addr), v, "case {case}");
        }
    }
}

// ---- recovery table state machine ----

/// Random interleavings of early/safe flushes from two epochs to a
/// small address pool, then either a crash or a commit sequence: the
/// final value of each line must be the last *surviving* write.
#[test]
fn rt_crash_never_leaks_uncommitted_early_values() {
    for case in 0..CASES {
        let mut rng = case_rng(4, case);
        let n = rng.index(39) + 1;
        let crash = rng.chance(0.5);
        let mut rt = RecoveryTable::new(64);
        let mut nvm = NvmImage::new();
        let e_old = EpochId::new(ThreadId(0), 0);
        let e_new = EpochId::new(ThreadId(0), 1);
        let mut seq = 0u64;
        // Track the last safe write per line (what a crash must recover
        // at minimum if no early values survive).
        let mut last_safe: HashMap<LineAddr, u8> = HashMap::new();
        for _ in 0..n {
            let slot = rng.below(4);
            let early = rng.chance(0.5);
            let val = rng.range_inclusive(1, 254) as u8;
            let line = LineAddr::containing(slot * 64);
            // The slot number doubles as the interned index (the RT only
            // compares indices for equality).
            let idx = LineIdx(slot as u32);
            seq += 1;
            // Early flushes come from the NEW (unsafe) epoch; safe ones
            // from the OLD epoch.
            let epoch = if early { e_new } else { e_old };
            let _ = rt.handle_flush(line, idx, [val; 64], seq, epoch, early, &mut nvm);
            if !early {
                last_safe.insert(line, val);
            }
        }
        if crash {
            rt.crash_drain(&mut nvm);
            // After the crash drain no uncommitted early value may be
            // visible where a safe value existed: the recovered value
            // must be the last safe write (or zero).
            for (line, val) in last_safe {
                let got = nvm.line(line).data[0];
                assert_eq!(
                    got, val,
                    "case {case}: line {line:?} recovered {got} but last safe write was {val}"
                );
            }
        } else {
            // Commit both epochs in dependency order: all records drain.
            rt.commit_epoch(e_old, &mut nvm);
            rt.commit_epoch(e_new, &mut nvm);
            assert_eq!(rt.occupancy(), 0, "case {case}");
        }
    }
}

// ---- Bloom filter ----

#[test]
fn bloom_has_no_false_negatives() {
    for case in 0..CASES {
        let mut rng = case_rng(5, case);
        let n = rng.index(127) + 1;
        let lines: Vec<u64> = (0..n).map(|_| rng.below(10_000)).collect();
        let mut f = CountingBloom::new(4096, 3);
        for &l in &lines {
            f.insert(LineAddr::containing(l * 64));
        }
        for &l in &lines {
            assert!(
                f.maybe_contains(LineAddr::containing(l * 64)),
                "case {case}: false negative for {l}"
            );
        }
    }
}

#[test]
fn bloom_remove_restores_absence() {
    for case in 0..CASES {
        let mut rng = case_rng(6, case);
        let n = rng.index(31) + 1;
        let mut unique: Vec<u64> = (0..n).map(|_| rng.below(1000)).collect();
        unique.sort_unstable();
        unique.dedup();
        let mut f = CountingBloom::new(4096, 3);
        for &l in &unique {
            f.insert(LineAddr::containing(l * 64));
        }
        for &l in &unique {
            f.remove(LineAddr::containing(l * 64));
        }
        assert!(f.is_empty(), "case {case}");
        for &l in &unique {
            assert!(
                !f.maybe_contains(LineAddr::containing(l * 64)),
                "case {case}: stale entry for {l}"
            );
        }
    }
}

// ---- event queue ----

#[test]
fn event_queue_pops_in_time_then_fifo_order() {
    for case in 0..CASES {
        let mut rng = case_rng(7, case);
        let n = rng.index(99) + 1;
        let times: Vec<u64> = (0..n).map(|_| rng.below(1000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Cycle(t), i);
        }
        let mut last: Option<(Cycle, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                assert!(t >= lt, "case {case}: time went backwards");
                if t == lt {
                    assert!(i > li, "case {case}: FIFO violated for same-cycle events");
                }
            }
            last = Some((t, i));
        }
    }
}

// ---- histogram ----

#[test]
fn histogram_percentiles_are_monotonic() {
    for case in 0..CASES {
        let mut rng = case_rng(8, case);
        let n = rng.index(199) + 1;
        let samples: Vec<usize> = (0..n).map(|_| rng.index(64)).collect();
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut prev = 0;
        for p in [10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = h.percentile(p);
            assert!(v >= prev, "case {case}: percentile not monotonic");
            prev = v;
        }
        assert_eq!(h.percentile(100.0), h.max(), "case {case}");
        let max = *samples.iter().max().unwrap() as f64;
        let min = *samples.iter().min().unwrap() as f64;
        assert!(h.mean() <= max && h.mean() >= min, "case {case}");
    }
}

// ---- log-bucketed histogram vs dense reference ----

/// The constant-memory [`LogHistogram`] must agree with the dense
/// [`Histogram`] on every percentile within its documented relative
/// error bound, across value magnitudes spanning many octaves.
#[test]
fn log_histogram_percentiles_match_dense_within_error_bound() {
    for case in 0..CASES {
        let mut rng = case_rng(14, case);
        let n = rng.index(400) + 1;
        // Mix magnitudes: exact linear range, mid octaves, and
        // million-cycle tails like real request latencies.
        let samples: Vec<u64> = (0..n)
            .map(|_| {
                let octave = rng.index(21) as u32;
                rng.below(1u64 << octave)
            })
            .collect();
        let mut dense = Histogram::new();
        let mut log = LogHistogram::new();
        for &s in &samples {
            dense.record(s as usize);
            log.record(s);
        }
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0] {
            let exact = dense.percentile(p) as u64;
            let approx = log.percentile(p);
            let bound = exact as f64 * LogHistogram::REL_ERROR + 0.5;
            assert!(
                approx.abs_diff(exact) as f64 <= bound,
                "case {case}: p{p}: dense={exact} log={approx} bound={bound}"
            );
        }
        assert_eq!(log.count(), dense.count(), "case {case}");
        assert_eq!(log.max(), dense.max() as u64, "case {case}");
        assert!((log.mean() - dense.mean()).abs() < 1e-6, "case {case}");
    }
}

/// Merging shards must be exactly equivalent to recording the
/// concatenated stream (the reduction the per-thread latency sinks do).
#[test]
fn log_histogram_sharded_merge_equals_single_stream() {
    for case in 0..CASES {
        let mut rng = case_rng(15, case);
        let shards = rng.index(4) + 2;
        let mut merged = LogHistogram::new();
        let mut whole = LogHistogram::new();
        for _ in 0..shards {
            let mut shard = LogHistogram::new();
            for _ in 0..rng.index(100) {
                let v = rng.below(1 << 24);
                shard.record(v);
                whole.record(v);
            }
            merged.merge(&shard);
        }
        assert_eq!(merged, whole, "case {case}");
    }
}

// ---- dependency DAG ----

/// Building a graph the way the protocol does (dependencies always
/// point to *older* epochs of other threads) keeps it acyclic.
#[test]
fn protocol_shaped_dep_graphs_are_acyclic() {
    for case in 0..CASES {
        let mut rng = case_rng(9, case);
        let n = rng.index(60);
        let mut g = DepGraph::new();
        for _ in 0..n {
            let t1 = rng.index(3);
            let ts1 = rng.below(20);
            let t2 = rng.index(3);
            let ts2 = rng.below(20);
            if t1 == t2 {
                continue;
            }
            // Protocol rule: a dependent epoch is created *after* the
            // source epoch closes; model by forcing source.ts <= dep.ts.
            let (src, dep) = if ts1 <= ts2 {
                (
                    EpochId::new(ThreadId(t1), ts1),
                    EpochId::new(ThreadId(t2), ts2 + 1),
                )
            } else {
                (
                    EpochId::new(ThreadId(t2), ts2),
                    EpochId::new(ThreadId(t1), ts1 + 1),
                )
            };
            g.add_cross_dep(dep, src);
        }
        assert!(
            g.topological_order().is_some(),
            "case {case}: protocol-shaped graph must be a DAG"
        );
    }
}

// ---- address interning ----

/// [`LineTable`] agrees with a model `HashMap` on every intern/lookup,
/// and hands out dense first-touch indices — including across the
/// open-addressed table's growth (footprint overflow past the initial
/// capacity).
#[test]
fn line_table_matches_hashmap_model() {
    for case in 0..CASES {
        let mut rng = case_rng(10, case);
        // Small initial capacity so most cases overflow and rehash.
        let mut table = LineTable::with_capacity(4);
        let mut model: HashMap<LineAddr, usize> = HashMap::new();
        let universe = rng.below(300) + 1;
        let ops = rng.index(400) + 1;
        for _ in 0..ops {
            let line = LineAddr::containing(rng.below(universe) * 64);
            if rng.chance(0.7) {
                let next = model.len();
                let expect = *model.entry(line).or_insert(next);
                let idx = table.intern(line);
                assert_eq!(
                    idx.as_usize(),
                    expect,
                    "case {case}: dense first-touch order"
                );
            } else {
                assert_eq!(
                    table.lookup(line).map(LineIdx::as_usize),
                    model.get(&line).copied(),
                    "case {case}: lookup must agree with the model"
                );
            }
        }
        assert_eq!(table.len(), model.len(), "case {case}");
        for (&line, &idx) in &model {
            let got = table.lookup(line).expect("interned line must resolve");
            assert_eq!(got.as_usize(), idx, "case {case}");
            assert_eq!(table.addr_of(got), line, "case {case}: addr_of round-trip");
        }
    }
}

// ---- dense dependency graph vs map-based model ----

/// The old map-based `DepGraph` semantics, re-implemented as the test
/// model: the dense per-thread-lane version must agree with it on every
/// query after a random protocol-shaped op sequence.
#[derive(Default)]
struct MapDepGraph {
    created: HashMap<EpochId, u64>,
    committed: HashMap<EpochId, u64>,
    cross: HashMap<EpochId, Vec<EpochId>>,
    clock: u64,
}

impl MapDepGraph {
    fn ensure(&mut self, e: EpochId) {
        if !self.created.contains_key(&e) {
            self.clock += 1;
            self.created.insert(e, self.clock);
        }
    }

    fn add_cross_dep(&mut self, dependent: EpochId, source: EpochId) {
        self.ensure(dependent);
        self.ensure(source);
        self.cross.entry(dependent).or_default().push(source);
    }

    fn mark_committed(&mut self, e: EpochId) {
        self.ensure(e);
        if !self.committed.contains_key(&e) {
            self.clock += 1;
            self.committed.insert(e, self.clock);
        }
    }

    fn direct_deps(&self, e: EpochId) -> Vec<EpochId> {
        let mut out = Vec::new();
        if e.ts > 0 {
            out.push(EpochId::new(e.thread, e.ts - 1));
        }
        if let Some(cs) = self.cross.get(&e) {
            out.extend(cs.iter().copied());
        }
        out
    }

    fn transitive_deps(&self, e: EpochId) -> HashSet<EpochId> {
        let mut seen = HashSet::new();
        let mut queue = self.direct_deps(e);
        while let Some(d) = queue.pop() {
            if seen.insert(d) {
                queue.extend(self.direct_deps(d));
            }
        }
        seen
    }
}

#[test]
fn dense_dep_graph_matches_map_model() {
    for case in 0..CASES {
        let mut rng = case_rng(11, case);
        let mut dense = DepGraph::new();
        let mut model = MapDepGraph::default();
        let ops = rng.index(120) + 1;
        for _ in 0..ops {
            let e = EpochId::new(ThreadId(rng.index(4)), rng.below(24));
            match rng.index(3) {
                0 => {
                    dense.ensure(e);
                    model.ensure(e);
                }
                1 => {
                    let src = EpochId::new(ThreadId(rng.index(4)), rng.below(24));
                    dense.add_cross_dep(e, src);
                    model.add_cross_dep(e, src);
                }
                _ => {
                    dense.mark_committed(e);
                    model.mark_committed(e);
                }
            }
        }

        assert_eq!(dense.len(), model.created.len(), "case {case}");
        assert_eq!(dense.now(), model.clock, "case {case}");
        let nodes: Vec<EpochId> = dense.nodes().collect();
        let mut expect_nodes: Vec<EpochId> = model.created.keys().copied().collect();
        expect_nodes.sort();
        assert_eq!(
            nodes, expect_nodes,
            "case {case}: thread-major ts-minor order"
        );

        let committed: Vec<EpochId> = dense.committed().collect();
        let mut expect_committed: Vec<EpochId> = model.committed.keys().copied().collect();
        expect_committed.sort();
        assert_eq!(committed, expect_committed, "case {case}");

        // Probe registered epochs and never-registered neighbours alike.
        for t in 0..5 {
            for ts in 0..26 {
                let e = EpochId::new(ThreadId(t), ts);
                assert_eq!(
                    dense.is_committed(e),
                    model.committed.contains_key(&e),
                    "case {case} {e:?}"
                );
                assert_eq!(
                    dense.creation_stamp(e),
                    model.created.get(&e).copied(),
                    "case {case} {e:?}"
                );
                assert_eq!(
                    dense.commit_stamp(e),
                    model.committed.get(&e).copied(),
                    "case {case} {e:?}"
                );
                let empty = Vec::new();
                assert_eq!(
                    dense.cross_deps_of(e),
                    model
                        .cross
                        .get(&e)
                        .filter(|_| model.created.contains_key(&e))
                        .unwrap_or(&empty)
                        .as_slice(),
                    "case {case} {e:?}"
                );
                assert_eq!(
                    dense.direct_deps(e),
                    model.direct_deps(e),
                    "case {case} {e:?}"
                );
                assert_eq!(
                    dense.transitive_deps(e),
                    model.transitive_deps(e),
                    "case {case} {e:?}"
                );
            }
        }
    }
}
