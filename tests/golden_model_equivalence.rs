//! Golden model-equivalence fixture.
//!
//! One small pinned-seed run per ModelKind × Flavor, asserting the
//! externally visible outcome (`cycles`, `ops`, `media_writes`,
//! `rt_max_occupancy`) against committed values. Any refactor of the
//! simulator core (e.g. the `sim/` protocol-trait split) must keep these
//! bit-identical; a legitimate modelling change must update this table
//! in the same commit and say why.
//!
//! Regenerate with:
//! ```text
//! GOLDEN_PRINT=1 cargo test --test golden_model_equivalence -- --nocapture
//! ```

use asap::harness::{run_once, RunSpec};
use asap::model::{Flavor, ModelKind};
use asap::sim::SimConfig;
use asap::workloads::WorkloadKind;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Golden {
    model: ModelKind,
    flavor: Flavor,
    cycles: u64,
    ops: u64,
    media_writes: u64,
    rt_max_occupancy: usize,
}

macro_rules! golden {
    ($model:ident, $flavor:ident, $cycles:expr, $ops:expr, $mw:expr, $rt:expr) => {
        Golden {
            model: ModelKind::$model,
            flavor: Flavor::$flavor,
            cycles: $cycles,
            ops: $ops,
            media_writes: $mw,
            rt_max_occupancy: $rt,
        }
    };
}

/// Pinned expectations, captured from the pre-refactor (monolithic
/// `sim.rs`) simulator at seed 2024, CCEH, 12 ops/thread, paper config.
const GOLDEN: &[Golden] = &[
    golden!(Baseline, Epoch, 23042, 48, 126, 0),
    golden!(Baseline, Release, 23042, 48, 126, 0),
    golden!(Hops, Epoch, 26740, 48, 126, 0),
    golden!(Hops, Release, 25606, 48, 168, 0),
    golden!(Asap, Epoch, 18604, 48, 127, 5),
    golden!(Asap, Release, 19264, 48, 126, 8),
    golden!(Eadr, Epoch, 14582, 48, 0, 0),
    golden!(Eadr, Release, 14582, 48, 0, 0),
    golden!(Bbb, Epoch, 14582, 48, 124, 0),
    golden!(Bbb, Release, 14582, 48, 124, 0),
];

fn spec(model: ModelKind, flavor: Flavor) -> RunSpec {
    RunSpec {
        config: SimConfig::paper(),
        model,
        flavor,
        workload: WorkloadKind::Cceh,
        ops_per_thread: 12,
        seed: 2024,
    }
}

#[test]
fn outcomes_match_golden_snapshots() {
    let print = std::env::var("GOLDEN_PRINT").is_ok();
    let mut failures = Vec::new();
    for g in GOLDEN {
        let out = run_once(&spec(g.model, g.flavor));
        let got = Golden {
            model: g.model,
            flavor: g.flavor,
            cycles: out.cycles,
            ops: out.ops,
            media_writes: out.media_writes,
            rt_max_occupancy: out.rt_max_occupancy,
        };
        if print {
            println!(
                "    golden!({:?}, {:?}, {}, {}, {}, {}),",
                g.model, g.flavor, got.cycles, got.ops, got.media_writes, got.rt_max_occupancy
            );
        }
        if got != *g {
            failures.push(format!("expected {g:?}\n     got {got:?}"));
        }
    }
    if print {
        return; // regeneration mode: table printed above, don't assert
    }
    assert!(
        failures.is_empty(),
        "golden snapshot drift:\n{}",
        failures.join("\n")
    );
}
